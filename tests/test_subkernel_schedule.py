"""Unit tests for sub-kernels, partition checking, and schedules."""

import pytest

from repro.analyzer import build_block_graph, run_instrumented
from repro.core.schedule import Schedule
from repro.core.subkernel import SubKernel, check_partition
from repro.errors import ScheduleError


class TestSubKernel:
    def test_basic(self):
        sub = SubKernel(node_id=3, blocks=(0, 1, 2))
        assert sub.num_blocks == 3
        assert sub.keys() == [(3, 0), (3, 1), (3, 2)]

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            SubKernel(node_id=0, blocks=())

    def test_duplicates_rejected(self):
        with pytest.raises(ScheduleError):
            SubKernel(node_id=0, blocks=(1, 1))

    def test_repr_mentions_label(self):
        assert "lbl" in repr(SubKernel(0, (0,), label="lbl"))


class TestCheckPartition:
    def test_valid_partition(self):
        subs = [SubKernel(0, (0, 1)), SubKernel(0, (2, 3)), SubKernel(1, (0,))]
        check_partition(subs, {0: 4, 1: 1})

    def test_overlap_detected(self):
        subs = [SubKernel(0, (0, 1)), SubKernel(0, (1, 2))]
        with pytest.raises(ScheduleError, match="more than one"):
            check_partition(subs, {0: 3})

    def test_gap_detected(self):
        subs = [SubKernel(0, (0,))]
        with pytest.raises(ScheduleError, match="cover"):
            check_partition(subs, {0: 2})

    def test_unknown_node(self):
        with pytest.raises(ScheduleError, match="unknown node"):
            check_partition([SubKernel(5, (0,))], {0: 1})

    def test_out_of_range_blocks(self):
        with pytest.raises(ScheduleError):
            check_partition([SubKernel(0, (0, 7))], {0: 2})


class TestSchedule:
    def test_default_schedule(self, diamond_app):
        sched = Schedule.default(diamond_app.graph)
        assert sched.num_launches == len(diamond_app.graph)
        assert sched.split_nodes() == []
        sched.validate(diamond_app.graph)

    def test_validate_against_block_graph(self, diamond_app):
        run = run_instrumented(diamond_app.graph)
        bdg = build_block_graph(run.trace)
        Schedule.default(diamond_app.graph).validate(diamond_app.graph, bdg)

    def test_reordered_schedule_rejected(self, diamond_app):
        run = run_instrumented(diamond_app.graph)
        bdg = build_block_graph(run.trace)
        subs = list(Schedule.default(diamond_app.graph))
        reordered = Schedule(subkernels=[subs[-1], *subs[:-1]], name="bad")
        with pytest.raises(ScheduleError, match="before its dependency"):
            reordered.validate(diamond_app.graph, bdg)

    def test_split_schedule_valid_when_order_respected(self, diamond_app):
        """Splitting nodes into halves in topo order stays valid."""
        run = run_instrumented(diamond_app.graph)
        bdg = build_block_graph(run.trace)
        subs = []
        for node in diamond_app.graph:
            blocks = list(node.kernel.all_block_ids())
            half = len(blocks) // 2 or 1
            subs.append(SubKernel(node.node_id, tuple(blocks[:half])))
            if blocks[half:]:
                subs.append(SubKernel(node.node_id, tuple(blocks[half:])))
        sched = Schedule(subkernels=subs, name="halves")
        sched.validate(diamond_app.graph, bdg)
        assert set(sched.split_nodes()) == {n.node_id for n in diamond_app.graph}

    def test_incomplete_schedule_rejected(self, diamond_app):
        subs = list(Schedule.default(diamond_app.graph))[:-1]
        with pytest.raises(ScheduleError):
            Schedule(subkernels=subs).validate(diamond_app.graph)

    def test_launches_per_node(self, diamond_app):
        sched = Schedule.default(diamond_app.graph)
        counts = sched.launches_per_node()
        assert all(c == 1 for c in counts.values())

    def test_summary(self, diamond_app):
        text = Schedule.default(diamond_app.graph).summary()
        assert "4 launches" in text
