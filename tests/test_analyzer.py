"""Tests for the block analyzer: instrumentation, dependencies, footprints."""

import pytest

from repro.analyzer import (
    BlockMemoryLines,
    FootprintAccumulator,
    build_block_graph,
    run_instrumented,
)
from repro.apps import build_jacobi_pingpong, build_pipeline
from repro.errors import GraphError
from repro.gpusim import GpuSimulator, GpuSpec


@pytest.fixture(scope="module")
def pipeline():
    app = build_pipeline(size=256, with_copies=False)
    run = run_instrumented(app.graph)
    return app, run


@pytest.fixture(scope="module")
def jacobi():
    app = build_jacobi_pingpong(iters=4, size=64)
    run = run_instrumented(app.graph)
    return app, run


class TestInstrumentation:
    def test_trace_covers_every_block(self, pipeline):
        app, run = pipeline
        assert run.total_blocks == app.graph.total_blocks()
        for node in app.graph:
            assert sorted(run.trace.blocks_of_node(node.node_id)) == list(
                node.kernel.all_block_ids()
            )

    def test_records_have_line_sets(self, pipeline):
        _, run = pipeline
        for record in run.trace:
            assert record.written_lines or record.read_lines
            assert record.touched_lines == record.read_lines | record.written_lines

    def test_one_launch_per_node(self, pipeline):
        app, run = pipeline
        assert len(run.launches) == len(app.graph)

    def test_reuses_supplied_simulator(self):
        app = build_pipeline(size=64, with_copies=False)
        sim = GpuSimulator()
        sim.l2.touch_many(range(100))
        run = run_instrumented(app.graph, sim)
        assert run.total_blocks > 0  # and the pre-warmed cache was flushed

    def test_trace_node_ids(self, pipeline):
        app, run = pipeline
        assert set(run.trace.node_ids()) == {n.node_id for n in app.graph}


class TestDependencyConstruction:
    def test_figure1b_block_dependencies(self, pipeline):
        """Each downscale block depends on exactly 4 grayscale blocks.

        256x256 grayscale with 32x8 blocks feeding a 128x128 downscale:
        one consumer tile covers a 64x16 input region = 2x2 producer
        blocks (the paper's Figure 1(b) shows the same 4-block shape).
        """
        app, run = pipeline
        bdg = build_block_graph(run.trace)
        gray_node = app.graph.node_by_name("A.grayscale").node_id
        down_node = app.graph.node_by_name("B.downscale").node_id
        for bid in app.graph.node(down_node).kernel.all_block_ids():
            producers = bdg.producers((down_node, bid))
            assert len(producers) == 4
            assert all(key[0] == gray_node for key in producers)

    def test_producer_coords_match_geometry(self, pipeline):
        app, run = pipeline
        bdg = build_block_graph(run.trace)
        gray = app.graph.node_by_name("A.grayscale")
        down = app.graph.node_by_name("B.downscale")
        # Consumer block (0,0) covers out[0:8, 0:32] -> in[0:16, 0:64]
        # -> producer blocks (0,0), (1,0), (0,1), (1,1).
        producers = bdg.producers((down.node_id, 0))
        coords = {gray.kernel.block_coords(bid) for _, bid in producers}
        assert coords == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_jacobi_stencil_neighbourhood(self, jacobi):
        """An interior JI block depends on the 3x3 producer neighbourhood."""
        app, run = jacobi
        bdg = build_block_graph(run.trace)
        ji0 = app.graph.node_by_name("JI.0")
        ji1 = app.graph.node_by_name("JI.1")
        kernel = ji1.kernel
        # Pick an interior block (grid is 2x8 for 64x64 images).
        interior = kernel.block_id(1, 4)
        producers = [
            key for key in bdg.producers((ji1.node_id, interior))
            if key[0] == ji0.node_id
        ]
        px, py = kernel.block_coords(interior)
        expected = {
            kernel.block_id(px + dx, py + dy)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if 0 <= px + dx < kernel.grid_x and 0 <= py + dy < kernel.grid_y
        }
        assert {bid for _, bid in producers} == expected

    def test_pingpong_creates_anti_dependencies(self, jacobi):
        """JI.2 overwrites du1, which JI.0 wrote: WAW constraints exist.

        (The WAR hazards against JI.1 coincide with JI.2's RAW
        producers — the same 3x3 block neighbourhood — so they dedupe
        into the producer set; the WAW against JI.0 survives as a
        distinct anti edge.)
        """
        app, run = jacobi
        bdg = build_block_graph(run.trace)
        ji0 = app.graph.node_by_name("JI.0").node_id
        ji1 = app.graph.node_by_name("JI.1").node_id
        ji2 = app.graph.node_by_name("JI.2").node_id
        anti_sources = set()
        raw_sources = set()
        for bid in bdg.blocks_of_node(ji2):
            anti_sources.update(k[0] for k in bdg.anti_producers((ji2, bid)))
            raw_sources.update(k[0] for k in bdg.producers((ji2, bid)))
        assert ji0 in anti_sources
        assert ji1 in raw_sources  # WAR vs JI.1 folds into RAW

    def test_raw_only_mode_drops_anti(self, jacobi):
        app, run = jacobi
        bdg = build_block_graph(run.trace, include_anti=False)
        for key in bdg:
            assert bdg.anti_producers(key) == ()

    def test_no_intra_kernel_dependencies(self, pipeline):
        _, run = pipeline
        bdg = build_block_graph(run.trace)
        for key in bdg:
            assert all(p[0] != key[0] for p in bdg.producers(key))


class TestMemoryLines:
    def test_table_covers_trace(self, pipeline):
        app, run = pipeline
        spec = GpuSpec()
        table = BlockMemoryLines.from_trace(
            run.trace, app.graph, spec.l2_line_bytes, spec.line_shift
        )
        assert len(table) == run.total_blocks
        for record in run.trace:
            assert table.lines_of(record.key) == record.touched_lines

    def test_missing_block_raises(self, pipeline):
        app, run = pipeline
        spec = GpuSpec()
        table = BlockMemoryLines.from_trace(
            run.trace, app.graph, spec.l2_line_bytes, spec.line_shift
        )
        with pytest.raises(GraphError):
            table.lines_of((999, 0))

    def test_footprint_subadditive(self, pipeline):
        app, run = pipeline
        spec = GpuSpec()
        table = BlockMemoryLines.from_trace(
            run.trace, app.graph, spec.l2_line_bytes, spec.line_shift
        )
        keys = [r.key for r in run.trace][:10]
        union = table.footprint_lines(keys)
        total = sum(table.footprint_lines([k]) for k in keys)
        assert union <= total
        assert table.footprint_bytes(keys) == union * spec.l2_line_bytes


class TestFootprintAccumulator:
    @pytest.fixture
    def table(self, pipeline):
        app, run = pipeline
        spec = GpuSpec()
        return BlockMemoryLines.from_trace(
            run.trace, app.graph, spec.l2_line_bytes, spec.line_shift
        )

    def test_try_add_within_budget(self, table, pipeline):
        _, run = pipeline
        keys = [r.key for r in run.trace][:4]
        acc = FootprintAccumulator(table, budget_bytes=10 * 1024 * 1024)
        assert acc.try_add(keys)
        assert acc.footprint_lines == table.footprint_lines(keys)

    def test_try_add_rejects_and_preserves_state(self, table, pipeline):
        _, run = pipeline
        keys = [r.key for r in run.trace]
        acc = FootprintAccumulator(table, budget_bytes=4096)
        before = acc.footprint_lines
        assert not acc.try_add(keys)  # whole app >> 4 KB
        assert acc.footprint_lines == before

    def test_would_fit_is_pure(self, table, pipeline):
        _, run = pipeline
        keys = [r.key for r in run.trace][:4]
        acc = FootprintAccumulator(table, budget_bytes=10 * 1024 * 1024)
        assert acc.would_fit(keys)
        assert acc.footprint_lines == 0

    def test_reset(self, table, pipeline):
        _, run = pipeline
        acc = FootprintAccumulator(table, budget_bytes=10 * 1024 * 1024)
        acc.try_add([run.trace.records_for_node(0)[0].key])
        acc.reset()
        assert acc.footprint_lines == 0

    def test_budget_validation(self, table):
        with pytest.raises(GraphError):
            FootprintAccumulator(table, budget_bytes=0)
