"""Tests for the application builders (Figures 1 and 4, synthetics)."""

import numpy as np
import pytest

from repro.apps import (
    build_diamond,
    build_hsopticalflow,
    build_jacobi_pingpong,
    build_pipeline,
    build_scale_chain,
    build_stencil_chain,
    horn_schunck_reference,
)
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.runtime import run_default_functional


class TestPipelineApp:
    def test_matches_paper_geometry(self):
        app = build_pipeline(size=256)
        a = app.graph.node_by_name("A.grayscale")
        # The paper's A<<<(8x32),(32x8)>>>.
        assert a.kernel.grid == (8, 32)
        assert a.kernel.block == (32, 8)

    def test_without_copies(self):
        app = build_pipeline(size=128, with_copies=False)
        assert len(app.graph) == 2

    def test_copy_nodes_not_tileable(self):
        app = build_pipeline(size=128)
        assert not app.graph.node_by_name("HtD.rgba").tileable
        assert not app.graph.node_by_name("DtH.half").tileable

    def test_host_inputs_shape(self):
        app = build_pipeline(size=128)
        payload = app.host_inputs()
        assert payload["rgba"].shape == (128, 512)


class TestOpticalFlowStructure:
    @pytest.fixture(scope="class")
    def app(self):
        return build_hsopticalflow(frame_size=128, levels=3, jacobi_iters=10)

    def test_figure4_node_census(self, app):
        """Node counts follow the Figure 4 structure.

        With L levels and N Jacobi iterations: 2 HtD, 2(L-1) DS, L WP,
        L DV, L*N JI, 2L AD, 2(L-1) US, 2 DtH, and 2 + 2L memsets.
        """
        hist = app.graph.kernel_name_histogram()
        levels, n = 3, 10
        assert hist["HtD"] == 2
        assert hist["downscale"] == 2 * (levels - 1)
        assert hist["warp"] == levels
        assert hist["derivatives"] == levels
        ji_total = sum(v for k, v in hist.items() if k.startswith("jacobi"))
        assert ji_total == levels * n
        assert hist["add"] == 2 * levels
        assert hist["upscale"] == 2 * (levels - 1)
        assert hist["DtH"] == 2
        assert hist["memset"] == 2 + 2 * levels

    def test_paper_scale_node_count(self):
        """The paper's configuration yields 'over a thousand kernels'."""
        app = build_hsopticalflow(frame_size=1024, levels=3, jacobi_iters=500)
        assert len(app.graph) == 1532
        assert app.jacobi_node_fraction > 0.97

    def test_jacobi_specs_shared(self, app):
        """All JI nodes of one level share two kernel specs (ping-pong)."""
        nodes = [n for n in app.graph if n.name.startswith("JI.l2")]
        specs = {id(n.kernel) for n in nodes}
        assert len(specs) == 2

    def test_graph_is_valid(self, app):
        app.graph.validate()

    def test_level_sizes_halve(self, app):
        assert app.graph.node_by_name("WP.l0").kernel.out.shape == (128, 128)
        assert app.graph.node_by_name("WP.l1").kernel.out.shape == (64, 64)
        assert app.graph.node_by_name("WP.l2").kernel.out.shape == (32, 32)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            build_hsopticalflow(frame_size=50, levels=3)
        with pytest.raises(ConfigurationError):
            build_hsopticalflow(frame_size=128, levels=0)
        with pytest.raises(ConfigurationError):
            build_hsopticalflow(frame_size=128, jacobi_iters=0)


class TestOpticalFlowFunctional:
    @pytest.mark.parametrize("levels,iters", [(1, 4), (2, 3), (3, 6)])
    def test_blockwise_matches_vectorized_reference(self, levels, iters):
        app = build_hsopticalflow(
            frame_size=64, levels=levels, jacobi_iters=iters
        )
        payload = app.host_inputs()
        arrays = run_default_functional(app.graph, payload)
        u_ref, v_ref = horn_schunck_reference(
            payload["f0.l0"], payload["f1.l0"], levels, iters,
            app.alpha, app.max_displacement,
        )
        np.testing.assert_allclose(arrays[app.flow_u.name], u_ref, atol=1e-4)
        np.testing.assert_allclose(arrays[app.flow_v.name], v_ref, atol=1e-4)

    def test_flow_recovers_known_translation(self):
        """A 2px x-shift produces a predominantly positive u field."""
        app = build_hsopticalflow(frame_size=64, levels=2, jacobi_iters=40)
        payload = app.host_inputs()  # shifted by (+2, +1)
        arrays = run_default_functional(app.graph, payload)
        u = arrays[app.flow_u.name]
        # Horn-Schunck under-estimates but the sign/direction must hold
        # over the interior.
        assert np.median(u[8:-8, 8:-8]) > 0.2

    def test_dth_copies_flow_to_host(self):
        app = build_hsopticalflow(frame_size=64, levels=1, jacobi_iters=2)
        arrays = run_default_functional(app.graph, app.host_inputs())
        np.testing.assert_array_equal(
            arrays[f"{app.flow_u.name}__host"], arrays[app.flow_u.name]
        )


class TestSynthetics:
    def test_scale_chain_functional(self):
        app = build_scale_chain(length=5, size=64)
        arrays = run_default_functional(app.graph)
        np.testing.assert_allclose(arrays[app.output_buffer.name], 32.0)

    def test_diamond_shape(self):
        app = build_diamond(size=64)
        assert len(app.graph) == 4
        assert len(app.graph.data_edges()) == 4

    def test_jacobi_pingpong_parity(self):
        app = build_jacobi_pingpong(iters=5, size=64)
        assert app.output_buffer.name == "du1"
        app2 = build_jacobi_pingpong(iters=4, size=64)
        assert app2.output_buffer.name == "du0"

    def test_stencil_chain_functional(self):
        app = build_stencil_chain(length=2, size=64, radius=1)
        arrays = run_default_functional(app.graph)
        np.testing.assert_allclose(arrays[app.output_buffer.name], 1.0, rtol=1e-5)

    def test_builders_validate_params(self):
        with pytest.raises(ConfigurationError):
            build_scale_chain(length=0)
        with pytest.raises(ConfigurationError):
            build_jacobi_pingpong(iters=0)
