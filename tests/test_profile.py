"""Tests for the planner observatory (``repro.obs.profile``).

Five attack surfaces:

* **the work-counter contract** — planner work counters must be
  non-zero where the topology exercises them, bit-identical across
  simulator backends and worker counts (the hypothesis property that
  pins the contract), and must survive the artifact store round-trip
  (warm-cache plans report the same work as the cold plan that
  produced them);
* **the stack profiler** — frame capture, pause/resume gating, span
  scoping, and the collapsed-stack export format;
* **exponent fitting** — exact recovery on synthetic power laws,
  degenerate-input refusals, deterministic zero-width CIs;
* **profile documents** — schema validation accepts what
  ``build_profile_doc`` emits and rejects each malformed mutation;
  exponent-drift comparison flags real drift and nothing else;
* **the CLI** — ``ktiler profile`` writes validated artifacts and
  turns drift into the documented exit codes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import (
    MAX_PROBE_KERNELS,
    PROBE_SHAPES,
    build_jacobi_pingpong,
    build_probe_graph,
)
from repro.cli import main
from repro.core import KTiler, KTilerConfig, PlannerWork, WORK_COUNTER_FAMILIES
from repro.errors import ConfigurationError
from repro.gpusim import GpuSpec
from repro.obs.bench_html import render_profile_html
from repro.obs.profile import (
    DEFAULT_SWEEP_SIZES,
    PROFILE_SCHEMA_VERSION,
    StackProfiler,
    build_profile_doc,
    collapsed_stacks,
    compare_exponents,
    fit_exponent,
    load_profile,
    profile_planner,
    run_sweep,
    scope_profiler_to_spans,
    validate_profile,
    write_profile,
)
from repro.obs.tracer import Tracer
from repro.store import ArtifactStore

SMALL_SPEC = GpuSpec(l2_bytes=64 * 1024, launch_gap_us=1.0)
CONFIG = KTilerConfig(launch_overhead_us=2.0)


def _plan_work(app, backend=None, workers=None, store=None) -> dict:
    ktiler = KTiler(
        app.graph, SMALL_SPEC, CONFIG,
        backend=backend, workers=workers, store=store,
    )
    return ktiler.plan().stats.work.as_dict()


# ----------------------------------------------------------------------
# The work-counter contract
# ----------------------------------------------------------------------
class TestPlannerWork:
    def test_dataclass_roundtrip_and_add(self):
        a = PlannerWork(blocks_visited=3, merge_probes=5)
        b = PlannerWork.from_dict(a.as_dict())
        assert b == a
        b.add(PlannerWork(blocks_visited=1))
        assert b.blocks_visited == 4 and a.blocks_visited == 3
        assert b.total() == 4 + 5

    def test_from_dict_ignores_unknown_counters(self):
        w = PlannerWork.from_dict({"merge_probes": 2, "from_the_future": 9})
        assert w.merge_probes == 2

    def test_families_cover_every_field(self):
        names = set(PlannerWork().as_dict())
        assert {f.split(".", 1)[1] for f in WORK_COUNTER_FAMILIES} == names

    def test_counters_fire_on_a_chain(self):
        work = _plan_work(build_probe_graph("chain", kernels=8))
        for counter in (
            "blocks_visited", "footprint_unions", "footprint_lines",
            "merge_probes", "perftable_queries", "weight_evals",
            "edges_weighted",
        ):
            assert work[counter] > 0, counter

    def test_frontier_updates_fire_on_stencil_dependencies(self):
        # Pointwise chains never leave a block uncovered; the Jacobi
        # ping-pong's stencil reads do, exercising the frontier dicts.
        work = _plan_work(build_jacobi_pingpong(iters=3, size=64))
        assert work["frontier_updates"] > 0

    @settings(max_examples=4, deadline=None)
    @given(
        shape=st.sampled_from(PROBE_SHAPES),
        kernels=st.integers(min_value=4, max_value=12),
    )
    def test_work_invariant_across_backends_and_workers(self, shape, kernels):
        """The contract: bit-identical work for any backend or worker count."""
        app = build_probe_graph(shape, kernels=kernels)
        oracle = _plan_work(app, backend="reference", workers=1)
        assert _plan_work(app, backend="fast", workers=1) == oracle
        assert _plan_work(app, backend="reference", workers=2) == oracle

    def test_work_survives_the_artifact_store(self, tmp_path):
        app = build_probe_graph("grid", kernels=9)
        store = ArtifactStore(tmp_path)
        cold = _plan_work(app, store=store)
        warm = _plan_work(app, store=store)
        assert warm == cold and cold["footprint_unions"] > 0

    def test_traced_plan_emits_planner_metrics(self):
        app = build_probe_graph("chain", kernels=6)
        tracer = Tracer()
        KTiler(app.graph, SMALL_SPEC, CONFIG, tracer=tracer).plan()
        for family in WORK_COUNTER_FAMILIES:
            assert family in tracer.metrics, family
        track = [
            ev for ev in tracer.sim_events
            if ev.get("name") == "planner.work"
        ]
        assert track, "planner.work counter track missing from the trace"
        # Ordinal timestamps: strictly increasing, one per evaluation
        # plus the closing sample.
        stamps = [ev["ts"] for ev in track]
        assert stamps == sorted(stamps)


# ----------------------------------------------------------------------
# Stack profiler
# ----------------------------------------------------------------------
def _leaf():
    return sum(range(2000))


def _caller():
    return _leaf() + _leaf()


class TestStackProfiler:
    def test_captures_nested_stacks(self):
        with StackProfiler() as prof:
            _caller()
        labels = {frame["stack"][-1] for frame in prof.frames()}
        assert any("_leaf" in label for label in labels)
        assert any("_caller" in label for label in labels)
        assert prof.total_us > 0.0

    def test_paused_profiler_records_nothing(self):
        prof = StackProfiler(paused=True)
        with prof:
            _caller()
        assert prof.frames() == []

    def test_pause_resume_gates_attribution(self):
        prof = StackProfiler(paused=True)
        with prof:
            _caller()          # paused: invisible
            prof.resume()
            _caller()          # recorded
            prof.pause()
            _caller()          # paused again
        calls = sum(
            frame["calls"] for frame in prof.frames()
            if "_leaf" in frame["stack"][-1]
        )
        assert calls == 2

    def test_span_scoping_records_only_named_spans(self):
        tracer = Tracer()
        prof = StackProfiler(paused=True)
        scope_profiler_to_spans(tracer, prof, ["hot"])
        with prof:
            with tracer.span("cold"):
                _caller()
            with tracer.span("hot"):
                _caller()
        calls = sum(
            frame["calls"] for frame in prof.frames()
            if "_leaf" in frame["stack"][-1]
        )
        assert calls == 2

    def test_collapsed_stack_format(self):
        frames = [
            {"stack": ["a", "b"], "self_us": 12.6, "calls": 1},
            {"stack": ["a"], "self_us": 3.2, "calls": 2},
            {"stack": ["z"], "self_us": 0.0, "calls": 5},  # dropped
        ]
        text = collapsed_stacks(frames)
        assert text == "a 3\na;b 13\n"

    def test_emit_counters_adds_depth_track(self):
        tracer = Tracer()
        with StackProfiler() as prof:
            for _ in range(200):
                _caller()
        emitted = prof.emit_counters(tracer)
        assert emitted > 0
        depth_events = [
            ev for ev in tracer.events
            if ev.get("name") == "profile.stack_depth"
        ]
        assert len(depth_events) == emitted


# ----------------------------------------------------------------------
# Exponent fitting
# ----------------------------------------------------------------------
class TestFitExponent:
    def test_recovers_exact_power_law(self):
        sizes = [8, 16, 32, 64]
        samples = [[3.0 * n ** 2] * 3 for n in sizes]
        fit = fit_exponent(sizes, samples)
        assert fit["exponent"] == pytest.approx(2.0, abs=1e-6)
        assert fit["r2"] == pytest.approx(1.0)
        # deterministic series -> zero-width CI
        assert fit["ci95"][0] == pytest.approx(fit["ci95"][1], abs=1e-9)

    def test_refuses_degenerate_series(self):
        assert fit_exponent([8], [[1.0]]) is None
        assert fit_exponent([8, 16], [[1.0], [0.0]]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            fit_exponent([8, 16], [[1.0]])

    def test_noisy_samples_widen_the_ci(self):
        sizes = [8, 16, 32, 64]
        tight = [[float(n)] * 4 for n in sizes]
        noisy = [[n * f for f in (0.5, 1.0, 1.5, 2.0)] for n in sizes]
        w_tight = fit_exponent(sizes, tight)["ci95"]
        w_noisy = fit_exponent(sizes, noisy)["ci95"]
        assert (w_noisy[1] - w_noisy[0]) > (w_tight[1] - w_tight[0])


# ----------------------------------------------------------------------
# Probe graphs
# ----------------------------------------------------------------------
class TestProbeGraphs:
    @pytest.mark.parametrize("shape", PROBE_SHAPES)
    @pytest.mark.parametrize("kernels", [1, 2, 7, 16, 25])
    def test_exact_node_count(self, shape, kernels):
        app = build_probe_graph(shape, kernels=kernels)
        assert len(list(app.graph)) == kernels

    def test_seed_changes_factors_not_structure(self):
        a = build_probe_graph("chain", kernels=6, seed=0)
        b = build_probe_graph("chain", kernels=6, seed=1)
        assert [n.name for n in a.graph] == [n.name for n in b.graph]

        def factors(app):
            return [
                n.kernel.scale for n in app.graph
                if hasattr(n.kernel, "scale")
            ]

        assert factors(a) != factors(b)
        assert factors(a) == factors(build_probe_graph("chain", kernels=6))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            build_probe_graph("torus", kernels=8)
        with pytest.raises(ConfigurationError):
            build_probe_graph("chain", kernels=0)
        with pytest.raises(ConfigurationError):
            build_probe_graph("chain", kernels=MAX_PROBE_KERNELS + 1)


# ----------------------------------------------------------------------
# Profile documents and drift
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chain_profile_doc():
    """One capture + sweep document shared by the schema tests."""
    app = build_probe_graph("chain", kernels=10)
    capture = profile_planner(app, spec=SMALL_SPEC)
    sweep = run_sweep(
        "chain", sizes=(6, 10, 14), repeats=2, warmup=0, spec=SMALL_SPEC
    )
    return build_profile_doc("probe-chain10", capture=capture, sweep=sweep)


class TestProfileDocuments:
    def test_doc_validates_and_roundtrips(self, chain_profile_doc, tmp_path):
        doc = chain_profile_doc
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        assert doc["profile"]["engine"] == "stack"
        assert doc["work"]["merge_probes"] > 0
        path = tmp_path / "profile.json"
        write_profile(str(path), doc)
        assert load_profile(str(path)) == doc

    def test_sweep_section_shape(self, chain_profile_doc):
        sweep = chain_profile_doc["sweep"]
        assert sweep["sizes"] == [6, 10, 14]
        assert [p["kernels"] for p in sweep["points"]] == sweep["sizes"]
        exps = sweep["exponents"]
        assert exps["wall_s"]["r2"] > 0.5
        # Work exponents are exact. The reference planner's BFS makes
        # merge probing the one superlinear chain phase; the fast
        # planner's bitset probes are word-counted and stay linear at
        # these sizes (one word per row), matching the linear counters.
        probes = exps["work"]["merge_probes"]["exponent"]
        visits = exps["work"]["blocks_visited"]["exponent"]
        env = chain_profile_doc["environment"]
        if env["planner_backend"] == "fast":
            assert probes == pytest.approx(visits)
        else:
            assert probes > visits

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("app"),
            lambda d: d.update(schema_version=99),
            lambda d: d.update(kind="bench-run"),
            lambda d: d["work"].update(from_the_future=1),
            lambda d: d["work"].update(merge_probes=-1),
            lambda d: d["environment"].update(noise_key="0" * 12),
            lambda d: d["profile"].update(engine="perf"),
            lambda d: d["profile"]["frames"].append({"stack": []}),
            lambda d: d["sweep"].update(shape="torus"),
            lambda d: d["sweep"]["sizes"].append(14),
            lambda d: d["sweep"]["points"].pop(),
            lambda d: d["sweep"]["exponents"].pop("wall_s"),
            lambda d: d["sweep"]["exponents"]["wall_s"].update(ci95=[2, 1]),
        ],
        ids=[
            "no-app", "bad-version", "bad-kind", "unknown-counter",
            "negative-counter", "stale-noise-key", "bad-engine",
            "empty-frame-stack", "bad-shape", "duplicate-size",
            "points-mismatch", "no-wall-fit", "unordered-ci",
        ],
    )
    def test_validation_rejects_mutations(self, chain_profile_doc, mutate):
        doc = json.loads(json.dumps(chain_profile_doc))
        mutate(doc)
        with pytest.raises(ValueError):
            validate_profile(doc)

    def test_capture_only_and_sweep_only_docs_validate(self, chain_profile_doc):
        doc = json.loads(json.dumps(chain_profile_doc))
        sweep = doc.pop("sweep")
        validate_profile(doc)
        sweep_only = {
            k: doc[k]
            for k in ("schema_version", "kind", "created_unix",
                      "environment", "app")
        }
        sweep_only["sweep"] = sweep
        validate_profile(sweep_only)

    def test_cprofile_engine_produces_flat_frames(self):
        app = build_probe_graph("chain", kernels=6)
        capture = profile_planner(app, spec=SMALL_SPEC, engine="cprofile")
        assert capture["frames"]
        assert all(len(f["stack"]) == 1 for f in capture["frames"])
        doc = build_profile_doc("probe-chain6", capture=capture)
        assert doc["profile"]["engine"] == "cprofile"

    def test_html_renders_every_section(self, chain_profile_doc):
        page = render_profile_html(chain_profile_doc)
        for needle in ("Planner work", "Hottest stacks", "Scalability sweep",
                       "Fitted exponents", "Ladder points", "<svg"):
            assert needle in page, needle

    def test_sweep_rejects_short_ladders(self):
        with pytest.raises(ValueError):
            run_sweep("chain", sizes=(8,), repeats=1)
        with pytest.raises(ValueError):
            run_sweep("torus", sizes=DEFAULT_SWEEP_SIZES)


class TestExponentDrift:
    def test_identical_docs_do_not_drift(self, chain_profile_doc):
        assert compare_exponents(chain_profile_doc, chain_profile_doc) == []

    def test_injected_drift_is_reported(self, chain_profile_doc):
        current = json.loads(json.dumps(chain_profile_doc))
        fit = current["sweep"]["exponents"]["work"]["merge_probes"]
        fit["exponent"] = round(fit["exponent"] + 1.0, 4)
        drifts = compare_exponents(chain_profile_doc, current)
        assert len(drifts) == 1 and "work.merge_probes" in drifts[0]

    def test_small_wobble_is_absorbed_by_tolerance(self, chain_profile_doc):
        current = json.loads(json.dumps(chain_profile_doc))
        fit = current["sweep"]["exponents"]["wall_s"]
        fit["exponent"] = round(fit["exponent"] + 0.1, 4)
        assert compare_exponents(chain_profile_doc, current) == []

    def test_shape_mismatch_short_circuits(self, chain_profile_doc):
        app = build_probe_graph("fan", kernels=6)
        fan_doc = build_profile_doc(
            "probe-fan6",
            sweep=run_sweep(
                "fan", sizes=(4, 6, 8), repeats=1, warmup=0, spec=SMALL_SPEC
            ),
        )
        drifts = compare_exponents(chain_profile_doc, fan_doc)
        assert len(drifts) == 1 and "shapes differ" in drifts[0]

    def test_disappeared_exponent_is_flagged(self, chain_profile_doc):
        current = json.loads(json.dumps(chain_profile_doc))
        del current["sweep"]["exponents"]["work"]["merge_probes"]
        drifts = compare_exponents(chain_profile_doc, current)
        assert any("disappeared" in d for d in drifts)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestProfileCLI:
    ARGS = ["profile", "--preset", "chain", "--kernels", "8"]

    def test_parser_registers_profile(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["profile", "--sweep"])
        assert args.command == "profile" and args.sweep
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--preset", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--engine", "perf"])

    def test_writes_validated_artifacts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(self.ARGS + [
            "-o", "prof.json", "--collapsed", "prof.folded",
            "--html", "prof.html",
        ])
        assert code == 0
        doc = load_profile("prof.json")
        assert doc["work"]["merge_probes"] > 0
        folded = (tmp_path / "prof.folded").read_text()
        assert folded and all(
            line.rsplit(" ", 1)[1].isdigit()
            for line in folded.strip().splitlines()
        )
        assert "Scalability" not in (tmp_path / "prof.html").read_text()
        assert "planner work:" in capsys.readouterr().out

    def test_sweep_emits_exponents(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(self.ARGS + [
            "--sweep", "--sweep-sizes", "5,8,11", "--repeats", "1",
            "--warmup", "0", "--engine", "none", "-o", "prof.json",
        ])
        assert code == 0
        doc = load_profile("prof.json")
        assert "profile" not in doc
        assert doc["sweep"]["exponents"]["work"]["merge_probes"]["exponent"] > 1.0
        assert "wall ~ n^" in capsys.readouterr().out

    def test_collapsed_without_engine_fails(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(self.ARGS + [
            "--engine", "none", "--collapsed", "prof.folded",
        ])
        assert code == 2

    def test_baseline_drift_is_advisory_unless_strict(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        sweep_args = self.ARGS + [
            "--sweep", "--sweep-sizes", "5,8,11", "--repeats", "1",
            "--warmup", "0", "--engine", "none",
        ]
        assert main(sweep_args + ["-o", "base.json"]) == 0
        # Timed exponents may wobble between runs (that is why drift is
        # advisory), so the guaranteed cases use a doctored baseline:
        # +1.0 on a deterministic work exponent is always past tol.
        base = json.load(open("base.json"))
        fit = base["sweep"]["exponents"]["work"]["merge_probes"]
        fit["exponent"] = round(fit["exponent"] + 1.0, 4)
        json.dump(base, open("doctored.json", "w"))
        assert main(sweep_args + ["-o", "cur.json",
                                  "--baseline", "doctored.json"]) == 0
        assert "EXPONENT DRIFT" in capsys.readouterr().err
        assert main(sweep_args + ["-o", "cur.json", "--strict",
                                  "--baseline", "doctored.json"]) == 2

    def test_run_summary_carries_planner_digest(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(self.ARGS + ["--engine", "none"]) == 0
        err = capsys.readouterr().err
        assert "planner unions=" in err and "weight evals=" in err
