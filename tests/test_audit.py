"""Tests for the miss-attribution and audit layer (repro.obs.audit).

Covers four levels:

* the stack-distance machinery (Fenwick tree + ReuseDistanceTracker)
  against a brute-force oracle;
* the MissAttributor: buffer tagging, launch contexts, the miss-class
  partition invariant (cold + capacity + conflict == misses) — as
  deterministic scenarios and as a hypothesis property on both cache
  backends, which must also agree with each other exactly;
* attribution passivity: an attached attributor never changes a cache's
  stats or state;
* the schedule auditor: edge joins, metrics/counter-track emission, the
  JSON schema check, and the HTML report.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.cache import SetAssocCache
from repro.gpusim.fast_cache import FastSetAssocCache
from repro.graph.buffers import Buffer, BufferAllocator
from repro.obs.audit import (
    MISS_CLASSES,
    MissAttributor,
    ReuseDistanceTracker,
    UNMAPPED,
    _Fenwick,
    audit_schedule,
    graph_buffers,
    render_html,
    validate_audit,
)


# ----------------------------------------------------------------------
# Stack-distance machinery
# ----------------------------------------------------------------------
class TestFenwick:
    def test_append_and_prefix(self):
        fen = _Fenwick()
        for _ in range(10):
            fen.append_zero()
        for i in range(1, 11):
            fen.add(i, i)
        # prefix(k) == 1 + 2 + ... + k
        for k in range(1, 11):
            assert fen.prefix(k) == k * (k + 1) // 2

    def test_append_preserves_existing_sums(self):
        fen = _Fenwick()
        fen.append_zero()
        fen.add(1, 5)
        for _ in range(20):
            fen.append_zero()
        assert fen.prefix(21) == 5
        fen.add(13, 2)
        assert fen.prefix(12) == 5
        assert fen.prefix(13) == 7


def brute_force_distances(stream):
    """Oracle: distinct other lines since each line's previous access."""
    out = []
    for i, line in enumerate(stream):
        prev = None
        for j in range(i - 1, -1, -1):
            if stream[j] == line:
                prev = j
                break
        if prev is None:
            out.append(None)
        else:
            out.append(len(set(stream[prev + 1 : i])))
    return out


class TestReuseDistanceTracker:
    def test_first_touch_is_none(self):
        tracker = ReuseDistanceTracker()
        assert tracker.observe(10) is None
        assert tracker.observe(11) is None

    def test_immediate_rereference_is_zero(self):
        tracker = ReuseDistanceTracker()
        tracker.observe(10)
        assert tracker.observe(10) == 0

    def test_classic_sequence(self):
        # A B C B A: B reused over {C}, A reused over {B, C}.
        tracker = ReuseDistanceTracker()
        assert [tracker.observe(x) for x in "ABCBA".encode()] == [
            None, None, None, 1, 2,
        ]

    def test_repeats_do_not_inflate_distance(self):
        # A B B B A: the three Bs are ONE distinct line.
        tracker = ReuseDistanceTracker()
        assert [tracker.observe(x) for x in "ABBBA".encode()] == [
            None, None, 0, 0, 1,
        ]

    @given(
        st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=120)
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, stream):
        tracker = ReuseDistanceTracker()
        assert [tracker.observe(x) for x in stream] == brute_force_distances(
            stream
        )

    def test_reset_forgets_history(self):
        tracker = ReuseDistanceTracker()
        tracker.observe(1)
        tracker.observe(2)
        tracker.reset()
        assert tracker.observe(1) is None


# ----------------------------------------------------------------------
# MissAttributor
# ----------------------------------------------------------------------
def make_buffers(line_shift=7, sizes=(4, 8)):
    alloc = BufferAllocator(line_bytes=1 << line_shift)
    line_words = (1 << line_shift) // 4
    return [
        alloc.allocate(Buffer(f"buf{i}", n * line_words))
        for i, n in enumerate(sizes)
    ]


def attach_fresh(cache, buffers, line_shift=7):
    attr = MissAttributor(buffers, line_shift, cache.capacity_lines)
    cache.attach_attribution(attr)
    return attr


class TestBufferTagging:
    def test_lines_map_to_owning_buffer(self):
        line_shift = 7
        buffers = make_buffers(line_shift)
        attr = MissAttributor(buffers, line_shift, capacity_lines=64)
        for buf in buffers:
            lines = buf.lines(line_shift)
            assert attr.buffer_of(lines.start) == buf.name
            assert attr.buffer_of(lines.stop - 1) == buf.name
        assert attr.buffer_of(0) == UNMAPPED
        assert attr.buffer_of(buffers[-1].lines(line_shift).stop) == UNMAPPED

    def test_launch_context_tags_kernel_and_node(self):
        buffers = make_buffers()
        cache = SetAssocCache(4, 2, hash_sets=False)
        attr = attach_fresh(cache, buffers)
        attr.expect_launch(3, "A")
        attr.begin_launch("kernelA", 1)
        first = buffers[0].lines(7).start
        cache.access(first)
        cache.access(first)
        assert attr.node_buffer_misses[(3, "buf0")] == 1
        assert attr.node_buffer_hits[(3, "buf0")] == 1
        assert attr.kernel_totals["kernelA"] == [1, 1]
        # A second launch without expect_launch gets no node tag.
        attr.begin_launch("kernelB", 1)
        cache.access(first)
        assert attr.node_buffer_hits[(None, "buf0")] == 1


class TestMissClasses:
    def test_cold_misses_on_fresh_cache(self):
        cache = SetAssocCache(4, 2, hash_sets=False)
        attr = attach_fresh(cache, make_buffers())
        attr.begin_launch("k", 1)
        for line in range(6):
            cache.access(line)
        classes = attr.miss_class_totals()["k"]
        assert classes == {"cold": 6, "capacity": 0, "conflict": 0}

    def test_capacity_miss(self):
        # Fully-associative 4-line cache; sweep 5 distinct lines twice:
        # the second round's misses all have reuse distance 4 >= 4.
        cache = SetAssocCache(1, 4, hash_sets=False)
        attr = attach_fresh(cache, make_buffers())
        attr.begin_launch("k", 1)
        for _ in range(2):
            for line in range(5):
                cache.access(line)
        classes = attr.miss_class_totals()["k"]
        assert classes == {"cold": 5, "capacity": 5, "conflict": 0}

    def test_conflict_miss(self):
        # 4 sets x 1 way (capacity 4), unhashed: lines 0 and 4 alias in
        # set 0.  0 4 0: the re-access of 0 has reuse distance 1 < 4 but
        # still misses — a pure conflict miss.
        cache = SetAssocCache(4, 1, hash_sets=False)
        attr = attach_fresh(cache, make_buffers())
        attr.begin_launch("k", 1)
        for line in (0, 4, 0):
            cache.access(line)
        classes = attr.miss_class_totals()["k"]
        assert classes == {"cold": 2, "capacity": 0, "conflict": 1}

    def test_flush_makes_first_touches_cold_again(self):
        cache = SetAssocCache(4, 2, hash_sets=False)
        attr = attach_fresh(cache, make_buffers())
        attr.begin_launch("k", 1)
        cache.access(3)
        cache.flush()
        cache.access(3)
        classes = attr.miss_class_totals()["k"]
        assert classes == {"cold": 2, "capacity": 0, "conflict": 0}

    def test_touch_many_is_not_observed(self):
        cache = SetAssocCache(4, 2, hash_sets=False)
        attr = attach_fresh(cache, make_buffers())
        attr.begin_launch("k", 1)
        cache.touch_many(range(4))
        assert attr.total_accesses == 0
        # ... but the warmed lines DO hit (and the hits are observed).
        cache.access(0)
        assert attr.total_hits == 1


GEOMETRIES = [
    (16, 4, True),
    (16, 4, False),
    (8, 1, True),
    (1, 8, False),
    (7, 3, True),
]


@given(
    geometry=st.sampled_from(GEOMETRIES),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_partition_property_and_backend_agreement(geometry, data):
    """cold+capacity+conflict == misses, on both backends, identically.

    One random stream through an attributed reference cache, the same
    stream batched through an attributed fast cache: the partition
    invariant must hold and every attributor aggregate must agree
    across backends bit-for-bit (attribution sits above the replay
    engine, so backend choice must be invisible to it).
    """
    num_sets, assoc, hash_sets = geometry
    universe = 3 * num_sets * assoc
    stream = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=universe),
                st.booleans(),
            ),
            min_size=1,
            max_size=300,
        )
    )
    line_shift = 7
    buffers = make_buffers(line_shift, sizes=(universe // 2 + 1,))
    base = buffers[0].lines(line_shift).start

    ref = SetAssocCache(num_sets, assoc, hash_sets=hash_sets)
    fast = FastSetAssocCache(num_sets, assoc, hash_sets=hash_sets)
    attrs = []
    for cache in (ref, fast):
        attr = attach_fresh(cache, buffers, line_shift)
        attr.begin_launch("k", 1)
        attrs.append(attr)
    lines = np.array([base + l for l, _ in stream], dtype=np.int64)
    writes = np.array([w for _, w in stream], dtype=bool)
    for line, is_write in zip(lines, writes):
        ref.access(int(line), bool(is_write))
    fast.replay_arrays(lines, writes)

    for attr, cache in zip(attrs, (ref, fast)):
        # The partition invariant, against the cache's own counters.
        assert attr.total_misses == cache.stats.misses
        assert attr.total_hits == cache.stats.hits
        for (kernel, _buf), counts in attr.class_counts.items():
            assert kernel == "k"
        assert sum(
            sum(c) for c in attr.class_counts.values()
        ) == attr.total_misses
    ref_attr, fast_attr = attrs
    assert ref_attr.class_counts == fast_attr.class_counts
    assert ref_attr.histograms == fast_attr.histograms
    assert ref_attr.node_buffer_hits == fast_attr.node_buffer_hits
    assert ref_attr.node_buffer_misses == fast_attr.node_buffer_misses
    assert ref_attr.kernel_totals == fast_attr.kernel_totals


@pytest.mark.parametrize("cache_cls", [SetAssocCache, FastSetAssocCache])
def test_attribution_is_passive(cache_cls):
    """Attaching an attributor changes neither stats nor final state."""
    gen = np.random.default_rng(11)
    lines = gen.integers(0, 128, size=1500, dtype=np.int64)
    writes = gen.random(1500) < 0.25

    plain = cache_cls(16, 4)
    observed = cache_cls(16, 4)
    attach_fresh(observed, make_buffers(), line_shift=7)
    for cache in (plain, observed):
        if isinstance(cache, FastSetAssocCache):
            cache.replay_arrays(lines, writes)
        else:
            for line, w in zip(lines, writes):
                cache.access(int(line), bool(w))
    assert plain.stats.snapshot() == observed.stats.snapshot()
    assert plain.clone_state() == observed.clone_state()


class TestOccupancy:
    def test_occupancy_by_buffer(self):
        line_shift = 7
        buffers = make_buffers(line_shift, sizes=(4, 8))
        cache = SetAssocCache(16, 4, hash_sets=False)
        attr = attach_fresh(cache, buffers, line_shift)
        attr.begin_launch("k", 1)
        for line in buffers[0].lines(line_shift):
            cache.access(line)
        occ = attr.occupancy_bytes(cache)
        assert occ == {"buf0": 4 * 128}
        for line in buffers[1].lines(line_shift):
            cache.access(line)
        occ = attr.occupancy_bytes(cache)
        assert occ["buf0"] == 4 * 128
        assert occ["buf1"] == 8 * 128


# ----------------------------------------------------------------------
# Schedule auditing (integration)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pipeline_audit():
    from repro.apps import build_pipeline
    from repro.core import KTiler, KTilerConfig
    from repro.experiments.presets import SCALED_SPEC
    from repro.obs import Tracer

    app = build_pipeline(size=128)
    tracer = Tracer()
    ktiler = KTiler(
        app.graph,
        spec=SCALED_SPEC,
        config=KTilerConfig(launch_overhead_us=SCALED_SPEC.launch_gap_us),
        tracer=tracer,
    )
    return app, tracer, audit_schedule(ktiler)


class TestAuditSchedule:
    def test_graph_buffers_unique_by_name(self, pipeline_audit):
        app, _tracer, _audit = pipeline_audit
        buffers = graph_buffers(app.graph)
        names = [b.name for b in buffers]
        assert len(names) == len(set(names))
        assert all(b.allocated for b in buffers)

    def test_every_data_edge_audited(self, pipeline_audit):
        app, _tracer, audit = pipeline_audit
        assert len(audit.edges) == len(list(app.graph.data_edges()))
        # Predicted weights come through the join.
        assert audit.predicted_total_saving_us > 0.0

    def test_miss_classes_partition_in_both_replays(self, pipeline_audit):
        _app, _tracer, audit = pipeline_audit
        for replay in (audit.default, audit.tiled):
            attr = replay.attributor
            assert attr.total_misses == replay.misses
            assert attr.total_hits == replay.hits
            assert sum(
                sum(c) for c in attr.class_counts.values()
            ) == replay.misses

    def test_metrics_and_counter_tracks_emitted(self, pipeline_audit):
        _app, tracer, audit = pipeline_audit
        names = tracer.metrics.names()
        assert "audit.edge.predicted_us" in names
        assert "audit.miss.cold" in names
        counter_events = [
            e for e in tracer.sim_events
            if e["ph"] == "C" and e["name"].startswith("l2_buffers.")
        ]
        # One sample per launch per replayed schedule.
        expected = len(audit.default.attributor.kernel_totals)
        assert len(counter_events) >= expected
        assert any(e["args"] for e in counter_events)

    def test_json_round_trips_schema(self, pipeline_audit, tmp_path):
        import json

        _app, _tracer, audit = pipeline_audit
        payload = validate_audit(audit.to_json_dict(preset="demo"))
        path = tmp_path / "audit.json"
        path.write_text(json.dumps(payload))
        validate_audit(json.loads(path.read_text()))

    def test_html_report_contains_edges_and_kernels(self, pipeline_audit):
        _app, _tracer, audit = pipeline_audit
        payload = audit.to_json_dict(preset="demo")
        html = render_html(payload)
        for edge in payload["edges"]:
            assert edge["buffer"] in html
        for row in payload["kernels"]:
            assert row["kernel"] in html
        assert "reuse distance" in html.lower()

    def test_format_table_mentions_partition(self, pipeline_audit):
        _app, _tracer, audit = pipeline_audit
        table = audit.format_table()
        assert "cold" in table and "capacity" in table and "conflict" in table


class TestValidateAudit:
    def _payload(self):
        from repro.apps import build_pipeline
        from repro.core import KTiler, KTilerConfig
        from repro.experiments.presets import SCALED_SPEC

        app = build_pipeline(size=128)
        ktiler = KTiler(
            app.graph,
            spec=SCALED_SPEC,
            config=KTilerConfig(launch_overhead_us=SCALED_SPEC.launch_gap_us),
        )
        return audit_schedule(ktiler).to_json_dict(preset="demo")

    def test_rejects_wrong_schema_version(self):
        payload = self._payload()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_audit(payload)

    def test_rejects_broken_partition(self):
        payload = self._payload()
        row = next(r for r in payload["kernels"] if r["misses"])
        row["cold"] += 1
        with pytest.raises(ValueError, match="partition"):
            validate_audit(payload)

    def test_rejects_missing_summary_key(self):
        payload = self._payload()
        del payload["summary"]["gain"]
        with pytest.raises(ValueError, match="summary.gain"):
            validate_audit(payload)

    def test_rejects_inconsistent_hit_delta(self):
        payload = self._payload()
        payload["edges"][0]["hit_delta"] += 1
        with pytest.raises(ValueError, match="hit_delta"):
            validate_audit(payload)
