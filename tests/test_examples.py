"""Smoke tests: every example script runs to completion.

The examples are user-facing documentation; these tests execute them
as subprocesses (with reduced parameters where supported) and check
their key output lines, so the README's promises stay true.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Figure 1(b)" in out
        assert "Tiled output identical to default output: True" in out
        assert "+ " not in out.split("gain with IG:")[1][:8]  # a real gain

    def test_optical_flow(self):
        out = run_example("optical_flow.py", "--iters", "4")
        assert "Figure 4 graph" in out
        assert "computes the identical flow: True" in out

    def test_kernel_study(self):
        out = run_example("kernel_study.py")
        assert "tileable" in out
        assert "input-dep" in out

    def test_dvfs_tradeoff(self):
        out = run_example("dvfs_tradeoff.py")
        assert "peak" in out
        assert "splitting 1000 blocks" in out
