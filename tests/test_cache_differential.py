"""Differential tests: FastSetAssocCache vs. the reference SetAssocCache.

The fast backend's contract is *bit-identical* behavior, not
approximate agreement: for any access stream both engines must report
the same per-access hit/miss outcomes, the same aggregate counters
(hits, misses, evictions, writes), and the same final tag + LRU state.
Every test here replays one stream through both engines and compares
all three.

Streams cover the adversarial corners of a set-associative LRU:
thrash exactly at capacity, single-set conflict storms (hash disabled
so every line aliases), write-allocate mixes, immediate re-reference
runs (the fast engine collapses these), and cross-launch persistence
with ``touch_many`` warming and ``flush`` in between.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cache import SetAssocCache
from repro.gpusim.fast_cache import FastSetAssocCache

GEOMETRIES = [
    # (num_sets, assoc, hash_sets)
    (16, 4, True),
    (16, 4, False),
    (64, 2, True),
    (8, 1, True),  # direct-mapped
    (1, 8, False),  # fully associative single set
    (7, 3, True),  # non-power-of-two sets
]


def make_pair(num_sets=16, assoc=4, hash_sets=True):
    ref = SetAssocCache(num_sets, assoc, hash_sets=hash_sets)
    fast = FastSetAssocCache(num_sets, assoc, hash_sets=hash_sets)
    return ref, fast


def canonical_state(cache):
    """Per-set LRU->MRU line lists, directly comparable across engines."""
    return [list(s) for s in cache.clone_state()]


def replay_both(ref, fast, lines, writes=None):
    """Replay one stream through both engines; return the two hit masks."""
    lines = np.asarray(lines, dtype=np.int64)
    if writes is None:
        writes = np.zeros(lines.size, dtype=bool)
    writes = np.asarray(writes, dtype=bool)
    ref_mask = np.fromiter(
        (ref.access(int(l), bool(w)) for l, w in zip(lines, writes)),
        dtype=bool,
        count=lines.size,
    )
    fast_mask = fast.replay_arrays(lines, writes)
    return ref_mask, fast_mask


def assert_identical(ref, fast, lines, writes=None):
    ref_mask, fast_mask = replay_both(ref, fast, lines, writes)
    np.testing.assert_array_equal(ref_mask, fast_mask)
    assert ref.stats.snapshot() == fast.stats.snapshot()
    assert canonical_state(ref) == canonical_state(fast)
    assert len(ref) == len(fast)


class TestRandomizedStreams:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_uniform_random(self, geometry, seed):
        num_sets, assoc, hash_sets = geometry
        gen = np.random.default_rng(seed)
        ref, fast = make_pair(num_sets, assoc, hash_sets)
        # Working set ~2x capacity: plenty of hits AND evictions.
        universe = 2 * num_sets * assoc
        lines = gen.integers(0, universe, size=4000, dtype=np.int64)
        writes = gen.random(4000) < 0.3
        assert_identical(ref, fast, lines, writes)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_skewed_hot_set(self, seed):
        """Zipf-ish reuse: a few hot lines plus a long random tail."""
        gen = np.random.default_rng(seed)
        ref, fast = make_pair(32, 4)
        hot = gen.integers(0, 64, size=3000, dtype=np.int64)
        cold = gen.integers(0, 1 << 40, size=1000, dtype=np.int64)
        lines = np.concatenate([hot, cold])
        gen.shuffle(lines)
        assert_identical(ref, fast, lines)

    def test_huge_line_ids(self):
        """Line ids near the top of the address space stay exact."""
        gen = np.random.default_rng(7)
        ref, fast = make_pair(16, 2)
        base = (1 << 50) + 12345
        lines = base + gen.integers(0, 256, size=2000, dtype=np.int64)
        assert_identical(ref, fast, lines)


class TestAdversarialStreams:
    def test_thrash_exactly_at_capacity(self):
        """Cyclic sweep over capacity+1 distinct lines: all-miss under LRU."""
        ref, fast = make_pair(8, 2, hash_sets=False)
        capacity = 8 * 2
        sweep = np.arange(capacity + 8, dtype=np.int64) * 8  # one set, wrap
        lines = np.tile(sweep, 20)
        assert_identical(ref, fast, lines)

    def test_cyclic_sweep_fits_capacity(self):
        """Sweep exactly capacity lines: steady-state all-hit."""
        ref, fast = make_pair(8, 4, hash_sets=False)
        sweep = np.arange(8 * 4, dtype=np.int64)
        lines = np.tile(sweep, 10)
        ref_mask, fast_mask = replay_both(ref, fast, lines)
        np.testing.assert_array_equal(ref_mask, fast_mask)
        assert ref.stats.snapshot() == fast.stats.snapshot()
        # Sanity on the scenario itself: only the cold pass misses.
        assert fast.stats.misses == 8 * 4
        assert fast.stats.evictions == 0

    def test_single_set_conflict_storm(self):
        """Every access aliases into set 0 (hash disabled)."""
        gen = np.random.default_rng(11)
        ref, fast = make_pair(16, 4, hash_sets=False)
        lines = gen.integers(0, 12, size=3000, dtype=np.int64) * 16
        writes = gen.random(3000) < 0.5
        assert_identical(ref, fast, lines, writes)

    def test_immediate_rereference_runs(self):
        """Long same-line runs exercise the fast engine's repeat collapse."""
        gen = np.random.default_rng(13)
        picks = gen.integers(0, 40, size=200, dtype=np.int64)
        runs = gen.integers(1, 30, size=200)
        lines = np.repeat(picks, runs)
        ref, fast = make_pair(4, 2)
        assert_identical(ref, fast, lines)

    def test_write_only_stream(self):
        """Write-allocate: writes move lines exactly like reads."""
        gen = np.random.default_rng(17)
        ref, fast = make_pair(16, 4)
        lines = gen.integers(0, 200, size=2000, dtype=np.int64)
        writes = np.ones(2000, dtype=bool)
        assert_identical(ref, fast, lines, writes)
        assert fast.stats.writes == 2000

    def test_alternating_ping_pong(self):
        """Two lines in one set with assoc=1: every access evicts."""
        ref, fast = make_pair(4, 1, hash_sets=False)
        lines = np.array([0, 4, 0, 4, 0, 4, 0, 4] * 50, dtype=np.int64)
        assert_identical(ref, fast, lines)
        assert fast.stats.hits == 0


class TestCrossLaunchPersistence:
    def test_state_persists_across_replays(self):
        """Several replay calls share way state, like launches share L2."""
        gen = np.random.default_rng(19)
        ref, fast = make_pair(32, 4)
        for _ in range(5):
            lines = gen.integers(0, 400, size=800, dtype=np.int64)
            writes = gen.random(800) < 0.2
            assert_identical(ref, fast, lines, writes)

    def test_touch_many_warming_matches(self):
        """touch_many installs identically and records no statistics."""
        gen = np.random.default_rng(23)
        ref, fast = make_pair(32, 4)
        warm = range(0, 300)
        ref.touch_many(warm)
        fast.touch_many(warm)
        assert ref.stats.snapshot() == fast.stats.snapshot() == (0, 0, 0, 0)
        assert canonical_state(ref) == canonical_state(fast)
        lines = gen.integers(0, 400, size=1000, dtype=np.int64)
        assert_identical(ref, fast, lines)

    def test_flush_between_launches(self):
        gen = np.random.default_rng(29)
        ref, fast = make_pair(16, 4)
        lines = gen.integers(0, 150, size=600, dtype=np.int64)
        assert_identical(ref, fast, lines)
        ref.flush()
        fast.flush()
        assert canonical_state(ref) == canonical_state(fast)
        assert len(fast) == 0
        # Stats survive the flush; the next replay starts cold.
        assert_identical(ref, fast, lines)

    def test_clone_restore_roundtrip(self):
        gen = np.random.default_rng(31)
        ref, fast = make_pair(16, 4)
        lines = gen.integers(0, 150, size=500, dtype=np.int64)
        assert_identical(ref, fast, lines)
        saved = fast.clone_state()
        assert canonical_state(ref) == saved  # formats are interchangeable
        probe = gen.integers(0, 150, size=500, dtype=np.int64)
        assert_identical(ref, fast, probe)
        ref.restore_state(saved)
        fast.restore_state(saved)
        assert canonical_state(fast) == saved
        # After restoring, both engines continue in lockstep.
        assert_identical(ref, fast, probe)


class TestScalarApiParity:
    def test_access_and_contains(self):
        ref, fast = make_pair(8, 2)
        for line in [1, 5, 1, 9, 33, 5, 1, 64, 9]:
            assert ref.access(line) == fast.access(line)
            assert ref.contains(line) == fast.contains(line)
        assert ref.stats.snapshot() == fast.stats.snapshot()

    def test_access_stream_tuple_api(self):
        gen = np.random.default_rng(37)
        ref, fast = make_pair(16, 4)
        stream = [
            (int(l), bool(w))
            for l, w in zip(
                gen.integers(0, 200, size=1500), gen.random(1500) < 0.4
            )
        ]
        assert ref.access_stream(stream) == fast.access_stream(stream)
        assert ref.stats.snapshot() == fast.stats.snapshot()
        assert canonical_state(ref) == canonical_state(fast)

    def test_empty_replay(self):
        ref, fast = make_pair()
        mask = fast.replay_arrays(np.zeros(0, dtype=np.int64))
        assert mask.size == 0
        assert fast.stats.snapshot() == ref.stats.snapshot() == (0, 0, 0, 0)

    def test_resident_lines_agree_as_sets(self):
        gen = np.random.default_rng(41)
        ref, fast = make_pair(16, 4)
        lines = gen.integers(0, 120, size=700, dtype=np.int64)
        replay_both(ref, fast, lines)
        assert sorted(ref.resident_lines()) == sorted(fast.resident_lines())


class TestSimulatorBackendParity:
    """End-to-end: GpuSimulator tallies agree between backends."""

    def _apps(self):
        from repro.graph.buffers import BufferAllocator
        from repro.kernels.pointwise import MemsetKernel, ScaleKernel

        alloc = BufferAllocator()
        src = alloc.new_image("src", 96, 96)
        out = alloc.new_image("out", 96, 96)
        return MemsetKernel(src, 1.0), ScaleKernel(src, out, 2.0)

    def _tally_fields(self, tally):
        return (
            tally.num_blocks,
            tally.accesses,
            tally.hits,
            tally.misses,
            tally.per_sm_hits,
            tally.per_sm_misses,
            tally.per_sm_issue,
        )

    def test_tally_launch_parity(self):
        from repro.gpusim import GpuSimulator

        memset, scale = self._apps()
        ref_sim = GpuSimulator(backend="reference")
        fast_sim = GpuSimulator(backend="fast")
        assert not getattr(ref_sim.l2, "supports_batched_replay", False)
        assert fast_sim.l2.supports_batched_replay
        for kernel in (memset, scale):  # cache persists across launches
            ref_tally = ref_sim.tally_launch(kernel)
            fast_tally = fast_sim.tally_launch(kernel)
            assert self._tally_fields(ref_tally) == self._tally_fields(fast_tally)
        assert ref_sim.l2.stats.snapshot() == fast_sim.l2.stats.snapshot()

    def test_launch_timing_parity(self):
        from repro.gpusim import GpuSimulator

        _, scale = self._apps()
        ref_t = GpuSimulator(backend="reference").launch(scale)
        fast_t = GpuSimulator(backend="fast").launch(scale)
        assert ref_t.time_us == fast_t.time_us

    def test_env_var_selects_backend(self, monkeypatch):
        from repro.gpusim import GpuSimulator
        from repro.gpusim.fast_cache import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        sim = GpuSimulator()
        assert getattr(sim.l2, "backend_name", None) == "fast"
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        sim = GpuSimulator()
        assert not getattr(sim.l2, "supports_batched_replay", False)


class TestAttributionBitIdentity:
    """Attribution mode must be invisible to the replay contract.

    An attributor-attached pair must produce exactly the masks, stats
    and final state of an unobserved pair — the attribution-off path is
    already covered by every other test in this file, so together these
    pin both sides of the opt-in.
    """

    def _attach(self, cache):
        from repro.graph.buffers import BufferAllocator
        from repro.obs.audit import MissAttributor

        alloc = BufferAllocator()
        buf = alloc.new("data", 4096)
        attr = MissAttributor([buf], 7, cache.capacity_lines)
        cache.attach_attribution(attr)
        attr.begin_launch("k", 1)
        return attr

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_observed_pair_matches_plain_pair(self, geometry):
        num_sets, assoc, hash_sets = geometry
        gen = np.random.default_rng(99)
        universe = 2 * num_sets * assoc
        lines = gen.integers(0, universe, size=2500, dtype=np.int64)
        writes = gen.random(2500) < 0.3

        plain_ref, plain_fast = make_pair(num_sets, assoc, hash_sets)
        plain_masks = replay_both(plain_ref, plain_fast, lines, writes)

        obs_ref, obs_fast = make_pair(num_sets, assoc, hash_sets)
        self._attach(obs_ref)
        self._attach(obs_fast)
        obs_masks = replay_both(obs_ref, obs_fast, lines, writes)

        np.testing.assert_array_equal(plain_masks[0], obs_masks[0])
        np.testing.assert_array_equal(plain_masks[1], obs_masks[1])
        assert plain_ref.stats.snapshot() == obs_ref.stats.snapshot()
        assert plain_fast.stats.snapshot() == obs_fast.stats.snapshot()
        assert canonical_state(plain_ref) == canonical_state(obs_ref)
        assert canonical_state(plain_fast) == canonical_state(obs_fast)

    def test_observed_stream_and_flush(self):
        """access_stream's attribution branch and flush hooks stay identical."""
        gen = np.random.default_rng(5)
        lines = gen.integers(0, 96, size=1200, dtype=np.int64)
        stream = [(int(l), bool(i % 3 == 0)) for i, l in enumerate(lines)]

        plain_ref, plain_fast = make_pair(16, 4)
        obs_ref, obs_fast = make_pair(16, 4)
        attrs = [self._attach(obs_ref), self._attach(obs_fast)]
        for caches in ((plain_ref, plain_fast), (obs_ref, obs_fast)):
            for cache in caches:
                cache.access_stream(stream[:600])
                cache.flush()
                cache.access_stream(stream[600:])
        assert plain_ref.stats.snapshot() == obs_ref.stats.snapshot()
        assert plain_fast.stats.snapshot() == obs_fast.stats.snapshot()
        assert canonical_state(obs_ref) == canonical_state(obs_fast)
        # The flush reset the reuse tracker: both attributors agree and
        # classified every post-flush first touch as cold again.
        assert attrs[0].class_counts == attrs[1].class_counts
        assert attrs[0].total_accesses == len(stream)
