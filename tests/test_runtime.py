"""Tests for the schedule runtime: timing paths and functional paths."""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.core.subkernel import SubKernel
from repro.errors import SimulationError
from repro.gpusim import NOMINAL, FrequencyConfig, GpuSpec
from repro.runtime import (
    compare_runs,
    execute_schedule,
    graph_buffers,
    make_arrays,
    measure_at,
    run_default_functional,
    run_functional,
    schedules_equivalent,
    tally_schedule,
)


class TestTimingPath:
    def test_tally_counts_launches(self, diamond_app):
        sched = Schedule.default(diamond_app.graph)
        replay = tally_schedule(sched, diamond_app.graph)
        assert replay.num_launches == len(diamond_app.graph)
        assert replay.accesses > 0
        assert 0.0 <= replay.hit_rate <= 1.0

    def test_measure_modes(self, diamond_app):
        sched = Schedule.default(diamond_app.graph)
        spec = GpuSpec()
        replay = tally_schedule(sched, diamond_app.graph, spec)
        run = measure_at(replay, spec, NOMINAL, launch_gap_us=5.0)
        assert run.total_us == pytest.approx(
            run.busy_us + 5.0 * (run.num_launches - 1)
        )

    def test_execute_schedule_shortcut(self, diamond_app):
        run = execute_schedule(
            Schedule.default(diamond_app.graph), diamond_app.graph
        )
        assert run.total_us > 0
        assert run.schedule_name == "default"

    def test_empty_schedule_rejected(self, diamond_app):
        with pytest.raises(SimulationError):
            tally_schedule(Schedule([], name="empty"), diamond_app.graph)

    def test_retiming_consistency(self, diamond_app):
        spec = GpuSpec()
        sched = Schedule.default(diamond_app.graph)
        replay = tally_schedule(sched, diamond_app.graph, spec)
        slow = measure_at(replay, spec, FrequencyConfig(405, 810))
        fast = measure_at(replay, spec, FrequencyConfig(1324, 5010))
        assert slow.busy_us > fast.busy_us

    def test_split_schedule_has_more_launches(self, diamond_app):
        graph = diamond_app.graph
        subs = []
        for node in graph:
            blocks = list(node.kernel.all_block_ids())
            subs.append(SubKernel(node.node_id, tuple(blocks[:1])))
            if blocks[1:]:
                subs.append(SubKernel(node.node_id, tuple(blocks[1:])))
        split = Schedule(subkernels=subs, name="split")
        replay = tally_schedule(split, graph)
        assert replay.num_launches > len(graph)


class TestFunctionalPath:
    def test_graph_buffers_unique(self, jacobi_app):
        bufs = graph_buffers(jacobi_app.graph)
        names = [b.name for b in bufs]
        assert len(names) == len(set(names))

    def test_make_arrays_zeroed(self, diamond_app):
        arrays = make_arrays(diamond_app.graph)
        assert set(arrays) == {b.name for b in graph_buffers(diamond_app.graph)}
        assert all(not a.any() for a in arrays.values())

    def test_make_arrays_stages_host_inputs(self, pipeline_app):
        payload = pipeline_app.host_inputs()
        arrays = make_arrays(pipeline_app.graph, payload)
        assert "rgba__host" in arrays
        np.testing.assert_array_equal(arrays["rgba__host"], payload["rgba"])

    def test_make_arrays_rejects_unknown_host_input(self, diamond_app):
        with pytest.raises(SimulationError):
            make_arrays(diamond_app.graph, {"nope": np.zeros(4)})

    def test_make_arrays_rejects_wrong_size(self, pipeline_app):
        with pytest.raises(SimulationError):
            make_arrays(pipeline_app.graph, {"rgba": np.zeros(7)})

    def test_default_functional_diamond(self, diamond_app):
        arrays = run_default_functional(diamond_app.graph)
        # init=3.0; left=2x, right=0.5x; sum=7.5.
        np.testing.assert_allclose(arrays["out"], 7.5)

    def test_run_functional_in_order(self, diamond_app):
        arrays = make_arrays(diamond_app.graph)
        run_functional(Schedule.default(diamond_app.graph), diamond_app.graph, arrays)
        np.testing.assert_allclose(arrays["out"], 7.5)

    def test_compare_runs_detects_difference(self):
        ref = {"a": np.zeros(4), "b": np.ones(4)}
        cand = {"a": np.zeros(4), "b": np.full(4, 1.1)}
        assert compare_runs(ref, cand) == ["b"]
        assert compare_runs(ref, ref) == []

    def test_compare_runs_missing_buffer(self):
        assert compare_runs({"a": np.zeros(2)}, {}) == ["a"]

    def test_schedules_equivalent_default(self, pipeline_app):
        ok, mismatched = schedules_equivalent(
            pipeline_app.graph,
            Schedule.default(pipeline_app.graph),
            pipeline_app.host_inputs(),
        )
        assert ok and not mismatched

    def test_schedules_equivalent_catches_broken_schedule(self, jacobi_app):
        """Reversing the JI chain computes something different."""
        graph = jacobi_app.graph
        subs = list(Schedule.default(graph))
        ji = [s for s in subs if s.label.startswith("JI")]
        others = [s for s in subs if not s.label.startswith("JI")]
        broken = Schedule(subkernels=others + ji[::-1], name="broken")
        ok, mismatched = schedules_equivalent(
            graph, broken, jacobi_app.host_inputs()
        )
        assert not ok
        assert mismatched
