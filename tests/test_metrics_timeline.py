"""Unit tests for profiler counters and the execution timeline."""

import pytest

from repro.gpusim import GpuSimulator, KernelProfile, compare_profiles
from repro.gpusim.timeline import Timeline
from repro.graph.buffers import BufferAllocator
from repro.kernels.pointwise import ScaleKernel


@pytest.fixture
def launch_result():
    alloc = BufferAllocator()
    src = alloc.new_image("src", 128, 128)
    out = alloc.new_image("out", 128, 128)
    return GpuSimulator().launch(ScaleKernel(src, out, 2.0))


class TestKernelProfile:
    def test_from_result(self, launch_result):
        profile = KernelProfile.from_result(launch_result)
        assert profile.kernel_name == "scale"
        assert profile.num_blocks == launch_result.tally.num_blocks
        assert 0.0 <= profile.cache_hit_rate <= 1.0
        assert 0.0 < profile.warp_issue_efficiency < 1.0
        assert profile.time_us == launch_result.time_us

    def test_pie_complements(self, launch_result):
        profile = KernelProfile.from_result(launch_result)
        assert profile.no_eligible_warp_fraction == pytest.approx(
            1.0 - profile.warp_issue_efficiency
        )
        assert profile.other_stall_fraction == pytest.approx(
            1.0 - profile.memory_stall_fraction
        )

    def test_format_row(self, launch_result):
        row = KernelProfile.from_result(launch_result).format_row()
        assert "scale" in row and "hit=" in row

    def test_compare_profiles(self, launch_result):
        profile = KernelProfile.from_result(launch_result)
        deltas = compare_profiles(profile, profile)
        assert deltas["hit_rate_gap"] == 0.0
        assert deltas["issue_efficiency_ratio"] == pytest.approx(1.0)


class TestTimeline:
    def test_gap_before_every_launch_but_first(self):
        tl = Timeline(launch_gap_us=5.0)
        tl.add_launch("a", 10.0)
        tl.add_launch("b", 20.0)
        tl.add_launch("c", 30.0)
        assert tl.num_launches == 3
        assert tl.busy_us == 60.0
        assert tl.total_gap_us == 10.0
        assert tl.total_us == 70.0

    def test_single_launch_has_no_gap(self):
        tl = Timeline(launch_gap_us=5.0)
        tl.add_launch("a", 10.0)
        assert tl.total_us == 10.0

    def test_event_positions(self):
        tl = Timeline(launch_gap_us=2.0)
        first = tl.add_launch("a", 10.0)
        second = tl.add_launch("b", 5.0)
        assert first.start_us == 0.0
        assert first.end_us == 10.0
        assert second.gap_before_us == 2.0
        assert second.start_us == 12.0
        assert second.end_us == 17.0

    def test_gap_override(self):
        tl = Timeline(launch_gap_us=5.0)
        tl.add_launch("a", 1.0)
        tl.add_launch("b", 1.0, gap_us=0.0)
        assert tl.total_gap_us == 0.0

    def test_zero_gap_views_agree(self):
        tl = Timeline(launch_gap_us=0.0)
        for i in range(4):
            tl.add_launch(f"k{i}", 2.5)
        assert tl.total_us == tl.busy_us == 10.0

    def test_iteration_and_summary(self):
        tl = Timeline(1.0)
        tl.add_launch("a", 1.0)
        assert len(list(tl)) == len(tl) == 1
        assert "1 launches" in tl.summary()
