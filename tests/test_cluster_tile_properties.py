"""Property-based tests for Algorithm 2 (ClusterTile).

For randomized workload geometries and cache budgets, any tiling the
heuristic produces must satisfy the §III/§IV-C2 invariants:

* the sub-kernels partition every member kernel's blocks;
* the sequence respects every block dependency (RAW and anti);
* every tiling round's memory footprint fits the cache budget;
* the cost equals the sum of the table lookups plus launch overheads.

And when the heuristic declares a cluster untileable (None), there
must be a genuine obstruction: some leaf block's in-cluster dependency
cone alone must overflow the budget.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import BlockMemoryLines, build_block_graph, run_instrumented
from repro.apps import build_jacobi_pingpong, build_scale_chain
from repro.core.cluster_tile import cluster_tile
from repro.core.subkernel import check_partition
from repro.gpusim import GpuSpec


class FlatTables:
    """A trivial cost model: 1 us per block (keeps properties fast)."""

    def time(self, kernel, combo, grid_size, work=None):
        if work is not None:
            work.perftable_queries += 1
        return float(grid_size)


_setups = {}


def setup(kind, size):
    key = (kind, size)
    if key not in _setups:
        if kind == "chain":
            app = build_scale_chain(length=4, size=size)
        else:
            app = build_jacobi_pingpong(iters=3, size=size)
        spec = GpuSpec()
        run = run_instrumented(app.graph)
        bdg = build_block_graph(run.trace)
        lines = BlockMemoryLines.from_trace(
            run.trace, app.graph, spec.l2_line_bytes, spec.line_shift
        )
        _setups[key] = (app, spec, bdg, lines)
    return _setups[key]


workloads = st.tuples(
    st.sampled_from(["chain", "jacobi"]),
    st.sampled_from([64, 128]),
    st.integers(3, 11),  # cache budget as log2(KiB): 8 KiB .. 2 MiB
)


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_tiling_invariants(workload):
    kind, size, budget_log2 = workload
    app, spec, bdg, lines = setup(kind, size)
    graph = app.graph
    # Tile the tileable tail of the graph (skip the memset sources so
    # clusters of different shapes arise).
    nodes = {n.node_id for n in graph if not n.kernel.name.startswith("memset")}
    cache_bytes = (1 << budget_log2) * 1024
    tiling = cluster_tile(
        nodes, graph, bdg, lines, FlatTables(), cache_bytes,
        launch_overhead_us=0.5,
    )
    if tiling is None:
        # Obstruction check: some single block's in-cluster cone must
        # already overflow the budget.
        overflow = False
        for node_id in nodes:
            for bid in graph.node(node_id).kernel.all_block_ids():
                cone = bdg.transitive_producers([(node_id, bid)], within_nodes=nodes)
                cone.add((node_id, bid))
                if lines.footprint_bytes(cone) > cache_bytes:
                    overflow = True
                    break
            if overflow:
                break
        assert overflow, "untileable verdict without an oversized cone"
        return

    # Partition invariant.
    check_partition(
        tiling.subkernels,
        {n: graph.node(n).num_blocks for n in nodes},
    )
    # Dependency invariant.
    done = set()
    for sub in tiling.subkernels:
        for key in sub.keys():
            for pred in bdg.all_predecessors(key):
                if pred[0] in nodes:
                    assert pred in done
        done.update(sub.keys())
    # Footprint invariant, per round.
    rounds = {}
    for sub in tiling.subkernels:
        rounds.setdefault(sub.label.rsplit("/r", 1)[-1], []).extend(sub.keys())
    for keys in rounds.values():
        assert lines.footprint_bytes(keys) <= cache_bytes
    # Cost accounting: blocks * 1us + overhead per launch.
    expected = sum(s.num_blocks for s in tiling.subkernels) + 0.5 * len(
        tiling.subkernels
    )
    assert tiling.cost_us == pytest.approx(expected)


@given(st.sampled_from([64, 128]), st.integers(6, 11))
@settings(max_examples=20, deadline=None)
def test_smaller_cache_never_fewer_launches(size, budget_log2):
    """Shrinking the cache can only split the cluster into more rounds."""
    app, spec, bdg, lines = setup("jacobi", size)
    graph = app.graph
    nodes = {n.node_id for n in graph if not n.kernel.name.startswith("memset")}
    big = cluster_tile(
        nodes, graph, bdg, lines, FlatTables(), (1 << budget_log2) * 1024 * 2
    )
    small = cluster_tile(
        nodes, graph, bdg, lines, FlatTables(), (1 << budget_log2) * 1024
    )
    if big is None or small is None:
        return  # untileable at one of the sizes: nothing to compare
    assert small.num_launches >= big.num_launches
