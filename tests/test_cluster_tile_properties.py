"""Property-based tests for Algorithm 2 (ClusterTile).

For randomized workload geometries and cache budgets, any tiling the
heuristic produces must satisfy the §III/§IV-C2 invariants:

* the sub-kernels partition every member kernel's blocks;
* the sequence respects every block dependency (RAW and anti);
* every tiling round's memory footprint fits the cache budget;
* the cost equals the sum of the table lookups plus launch overheads.

And when the heuristic declares a cluster untileable (None), there
must be a genuine obstruction: some leaf block's in-cluster dependency
cone alone must overflow the budget.

The readiness-frontier tests cover the incremental ``missing`` counts
behind FindMoreBlks: any cover/uncover script must leave the
incremental counts equal to a from-scratch recomputation, including
through the dropped-batch path (small budgets force drops, and
``audit_frontier=True`` cross-checks after every commit *and* drop).
The dropped-batch cursor regression pins full tiling outcomes — the
cursor rewind is scoped to dropped blocks and must stay bit-identical
to the full from-zero rescan it replaced.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import BlockMemoryLines, build_block_graph, run_instrumented
from repro.apps import build_jacobi_pingpong, build_scale_chain
from repro.core.cluster_tile import ReadinessFrontier, cluster_tile
from repro.core.subkernel import check_partition
from repro.core.work import PlannerWork
from repro.gpusim import GpuSpec


class FlatTables:
    """A trivial cost model: 1 us per block (keeps properties fast)."""

    def time(self, kernel, combo, grid_size, work=None):
        if work is not None:
            work.perftable_queries += 1
        return float(grid_size)


_setups = {}


def setup(kind, size):
    key = (kind, size)
    if key not in _setups:
        if kind == "chain":
            app = build_scale_chain(length=4, size=size)
        else:
            app = build_jacobi_pingpong(iters=3, size=size)
        spec = GpuSpec()
        run = run_instrumented(app.graph)
        bdg = build_block_graph(run.trace)
        lines = BlockMemoryLines.from_trace(
            run.trace, app.graph, spec.l2_line_bytes, spec.line_shift
        )
        _setups[key] = (app, spec, bdg, lines)
    return _setups[key]


workloads = st.tuples(
    st.sampled_from(["chain", "jacobi"]),
    st.sampled_from([64, 128]),
    st.integers(3, 11),  # cache budget as log2(KiB): 8 KiB .. 2 MiB
)


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_tiling_invariants(workload):
    kind, size, budget_log2 = workload
    app, spec, bdg, lines = setup(kind, size)
    graph = app.graph
    # Tile the tileable tail of the graph (skip the memset sources so
    # clusters of different shapes arise).
    nodes = {n.node_id for n in graph if not n.kernel.name.startswith("memset")}
    cache_bytes = (1 << budget_log2) * 1024
    tiling = cluster_tile(
        nodes, graph, bdg, lines, FlatTables(), cache_bytes,
        launch_overhead_us=0.5,
    )
    if tiling is None:
        # Obstruction check: some single block's in-cluster cone must
        # already overflow the budget.
        overflow = False
        for node_id in nodes:
            for bid in graph.node(node_id).kernel.all_block_ids():
                cone = bdg.transitive_producers([(node_id, bid)], within_nodes=nodes)
                cone.add((node_id, bid))
                if lines.footprint_bytes(cone) > cache_bytes:
                    overflow = True
                    break
            if overflow:
                break
        assert overflow, "untileable verdict without an oversized cone"
        return

    # Partition invariant.
    check_partition(
        tiling.subkernels,
        {n: graph.node(n).num_blocks for n in nodes},
    )
    # Dependency invariant.
    done = set()
    for sub in tiling.subkernels:
        for key in sub.keys():
            for pred in bdg.all_predecessors(key):
                if pred[0] in nodes:
                    assert pred in done
        done.update(sub.keys())
    # Footprint invariant, per round.
    rounds = {}
    for sub in tiling.subkernels:
        rounds.setdefault(sub.label.rsplit("/r", 1)[-1], []).extend(sub.keys())
    for keys in rounds.values():
        assert lines.footprint_bytes(keys) <= cache_bytes
    # Cost accounting: blocks * 1us + overhead per launch.
    expected = sum(s.num_blocks for s in tiling.subkernels) + 0.5 * len(
        tiling.subkernels
    )
    assert tiling.cost_us == pytest.approx(expected)


@given(st.sampled_from([64, 128]), st.integers(6, 11))
@settings(max_examples=20, deadline=None)
def test_smaller_cache_never_fewer_launches(size, budget_log2):
    """Shrinking the cache can only split the cluster into more rounds."""
    app, spec, bdg, lines = setup("jacobi", size)
    graph = app.graph
    nodes = {n.node_id for n in graph if not n.kernel.name.startswith("memset")}
    big = cluster_tile(
        nodes, graph, bdg, lines, FlatTables(), (1 << budget_log2) * 1024 * 2
    )
    small = cluster_tile(
        nodes, graph, bdg, lines, FlatTables(), (1 << budget_log2) * 1024
    )
    if big is None or small is None:
        return  # untileable at one of the sizes: nothing to compare
    assert small.num_launches >= big.num_launches


# ----------------------------------------------------------------------
# Readiness frontier: incremental counts == from-scratch recomputation
# ----------------------------------------------------------------------
def _tileable_nodes(app):
    return {
        n.node_id
        for n in app.graph
        if not n.kernel.name.startswith("memset")
    }


def _tiling_fingerprint(tiling):
    """Everything observable about one tiling, hashable for comparison."""
    return (
        tiling.rounds,
        tiling.cost_us,
        tuple((s.label, s.node_id, s.blocks) for s in tiling.subkernels),
        tiling.work.as_dict(),
    )


@given(workloads)
@settings(max_examples=25, deadline=None)
def test_frontier_audit_does_not_perturb_and_never_drifts(workload):
    """audit_frontier=True validates after every commit and drop — any
    incremental-count drift raises — and must not change the result or
    the work counters (the oracle charges nothing)."""
    kind, size, budget_log2 = workload
    app, spec, bdg, lines = setup(kind, size)
    nodes = _tileable_nodes(app)
    cache_bytes = (1 << budget_log2) * 1024
    plain = cluster_tile(
        nodes, app.graph, bdg, lines, FlatTables(), cache_bytes,
        launch_overhead_us=0.5,
    )
    audited = cluster_tile(
        nodes, app.graph, bdg, lines, FlatTables(), cache_bytes,
        launch_overhead_us=0.5, audit_frontier=True,
    )
    if plain is None:
        assert audited is None
    else:
        assert _tiling_fingerprint(plain) == _tiling_fingerprint(audited)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_frontier_incremental_matches_recompute(data):
    """Random cover/uncover scripts over real block graphs: the lazily
    initialized, incrementally adjusted counts must equal the oracle."""
    kind = data.draw(st.sampled_from(["chain", "jacobi"]))
    app, spec, bdg, lines = setup(kind, 64)
    nodes = _tileable_nodes(app)
    keys = sorted(
        (v, b)
        for v in nodes
        for b in range(app.graph.node(v).num_blocks)
    )
    include_anti = data.draw(st.booleans())
    work = PlannerWork()
    frontier = ReadinessFrontier(bdg, nodes, include_anti, work)
    covered = set()
    is_covered = lambda k: k in covered  # noqa: E731
    for _ in range(data.draw(st.integers(min_value=1, max_value=40))):
        key = data.draw(st.sampled_from(keys))
        if key in covered:
            covered.discard(key)
            frontier.note_uncovered(key)
        else:
            covered.add(key)
            frontier.note_covered(key)
        probe = data.draw(st.sampled_from(keys))
        count = frontier.missing_count(probe, is_covered)
        assert count >= 0
        frontier.validate(is_covered)
    # The oracle charged nothing beyond the tracked inits/adjustments.
    assert frontier.recompute(is_covered) is not None
    before = work.frontier_updates
    frontier.validate(is_covered)
    assert work.frontier_updates == before


def test_frontier_missing_count_is_lazy_and_charged():
    app, spec, bdg, lines = setup("jacobi", 64)
    nodes = _tileable_nodes(app)
    work = PlannerWork()
    frontier = ReadinessFrontier(bdg, nodes, True, work)
    key = (min(nodes), 0)
    consumers = bdg.consumers(key)
    in_cluster = [c for c in consumers if c[0] in nodes]
    assert in_cluster, "jacobi block 0 must have in-cluster consumers"
    probe = in_cluster[0]
    first = frontier.missing_count(probe, lambda k: False)
    assert work.frontier_updates == 1  # lazy init charged once
    again = frontier.missing_count(probe, lambda k: True)
    assert again == first  # cached: predicate ignored after init
    assert work.frontier_updates == 1


# ----------------------------------------------------------------------
# Dropped-batch cursor rewind: pinned bit-identical outcomes
# ----------------------------------------------------------------------
def _tiling_digest(tiling) -> str:
    h = hashlib.sha256()
    for sub in tiling.subkernels:
        h.update(repr((sub.label, sub.node_id, sub.blocks)).encode())
    return h.hexdigest()[:12]


#: (kind, size, budget KiB) -> (rounds, launches, blocks_visited,
#: frontier_updates, footprint_unions, schedule digest).  Captured from
#: the from-zero cursor-rescan implementation and verified bit-identical
#: against the scoped rewind; the small-budget chain rows force many
#: dropped batches, so any rewind bug shifts these immediately.
_PINNED_TILINGS = {
    ("jacobi", 64, 64): (3, 9, 60, 215, 8, "f05f96d86d57"),
    ("jacobi", 64, 128): (1, 3, 48, 111, 6, "0600668e8a57"),
    ("chain", 64, 8): (16, 64, 124, 0, 31, "7eaf3376b219"),
    ("chain", 64, 16): (6, 24, 84, 0, 21, "e2f78bce263a"),
    ("chain", 64, 32): (3, 12, 72, 0, 18, "7a815801e5e1"),
}


@pytest.mark.parametrize("case", sorted(_PINNED_TILINGS))
def test_dropped_batch_cursor_rewind_pinned(case):
    kind, size, budget_kib = case
    app, spec, bdg, lines = setup(kind, size)
    nodes = _tileable_nodes(app)
    tiling = cluster_tile(
        nodes, app.graph, bdg, lines, FlatTables(), budget_kib * 1024,
        launch_overhead_us=0.5, audit_frontier=True,
    )
    assert tiling is not None
    expected = _PINNED_TILINGS[case]
    actual = (
        tiling.rounds,
        tiling.num_launches,
        tiling.work.blocks_visited,
        tiling.work.frontier_updates,
        tiling.work.footprint_unions,
        _tiling_digest(tiling),
    )
    assert actual == expected


def test_small_budgets_actually_exercise_drops():
    """Guard the regression table's premise: the chain cases at small
    budgets must reject batches (footprint_unions > rounds means the
    cache constraint failed at least once)."""
    app, spec, bdg, lines = setup("chain", 64)
    nodes = _tileable_nodes(app)
    tiling = cluster_tile(
        nodes, app.graph, bdg, lines, FlatTables(), 8 * 1024,
        launch_overhead_us=0.5,
    )
    assert tiling is not None
    assert tiling.work.footprint_unions > tiling.rounds
