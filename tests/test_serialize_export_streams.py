"""Tests for schedule serialization, graph export, and stream pipelining."""

import json

import pytest

from repro.apps import build_jacobi_pingpong, build_pipeline
from repro.core import KTiler, KTilerConfig
from repro.core.schedule import Schedule
from repro.core.serialize import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.errors import ScheduleError
from repro.graph.export import partition_to_dot, schedule_gantt, to_dot
from repro.gpusim import GpuSpec, NOMINAL
from repro.runtime import measure_at, tally_schedule
from repro.runtime.streams import measure_with_streams


class TestSerialization:
    def test_roundtrip_default_schedule(self, pipeline_app):
        schedule = Schedule.default(pipeline_app.graph)
        payload = schedule_to_dict(schedule, pipeline_app.graph)
        loaded = schedule_from_dict(payload, pipeline_app.graph)
        assert [(s.node_id, s.blocks) for s in loaded] == [
            (s.node_id, s.blocks) for s in schedule
        ]
        assert loaded.name == schedule.name

    def test_roundtrip_tiled_schedule_via_file(self, tmp_path):
        app = build_pipeline(size=1024)
        ktiler = KTiler(app.graph, config=KTilerConfig(launch_overhead_us=2.0))
        plan = ktiler.plan(NOMINAL)
        path = tmp_path / "schedule.json"
        save_schedule(plan.schedule, path, app.graph)
        loaded = load_schedule(path, app.graph)
        assert [(s.node_id, s.blocks) for s in loaded] == [
            (s.node_id, s.blocks) for s in plan.schedule
        ]

    def test_run_length_encoding_is_compact(self, pipeline_app):
        schedule = Schedule.default(pipeline_app.graph)
        payload = schedule_to_dict(schedule)
        for entry in payload["subkernels"]:
            # Contiguous full-grid sub-kernels encode as a single run.
            assert len(entry["blocks"]) == 1

    def test_wrong_graph_rejected(self, tmp_path, pipeline_app):
        schedule = Schedule.default(pipeline_app.graph)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path, pipeline_app.graph)
        other = build_jacobi_pingpong(iters=3, size=64)
        with pytest.raises(ScheduleError, match="different application graph"):
            load_schedule(path, other.graph)

    def test_bad_version_rejected(self, pipeline_app):
        payload = schedule_to_dict(Schedule.default(pipeline_app.graph))
        payload["format_version"] = 99
        with pytest.raises(ScheduleError, match="format version"):
            schedule_from_dict(payload)

    def test_file_is_valid_json(self, tmp_path, pipeline_app):
        path = tmp_path / "schedule.json"
        save_schedule(Schedule.default(pipeline_app.graph), path)
        with open(path) as fh:
            assert json.load(fh)["format_version"] == 1


class TestDotExport:
    def test_small_graph_dot(self, diamond_app):
        dot = to_dot(diamond_app.graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for node in diamond_app.graph:
            assert f'label="{node.name}"' in dot
        # Data edges carry buffer labels.
        assert 'label="src"' in dot

    def test_anti_edges_optional(self, jacobi_app):
        without = to_dot(jacobi_app.graph, include_anti=False)
        with_anti = to_dot(jacobi_app.graph, include_anti=True)
        assert "anti" not in without
        assert "anti" in with_anti

    def test_non_tileable_nodes_marked(self, pipeline_app):
        dot = to_dot(pipeline_app.graph)
        assert "shape=ellipse" in dot  # the HtD/DtH copies

    def test_large_graph_summarized(self):
        from repro.apps import build_hsopticalflow

        app = build_hsopticalflow(frame_size=256, levels=3, jacobi_iters=200)
        dot = to_dot(app.graph, max_nodes=100)
        assert "x200" in dot  # per-kernel-name summary
        assert dot.count("\n") < 200

    def test_partition_coloring(self, diamond_app):
        from repro.core.cluster import Partition

        part = Partition.singletons(diamond_app.graph)
        part = part.merged(1, 2)
        dot = partition_to_dot(diamond_app.graph, part)
        assert "fillcolor=" in dot


class TestGantt:
    def test_interleaving_visible(self):
        app = build_pipeline(size=1024)
        ktiler = KTiler(app.graph, config=KTilerConfig(launch_overhead_us=2.0))
        plan = ktiler.plan(NOMINAL)
        chart = schedule_gantt(plan.schedule, app.graph)
        assert "A.grayscale" in chart and "B.downscale" in chart
        assert "|" in chart

    def test_default_schedule_one_mark_per_lane(self, diamond_app):
        chart = schedule_gantt(Schedule.default(diamond_app.graph), diamond_app.graph)
        for node in diamond_app.graph:
            assert node.name in chart


class TestStreams:
    @pytest.fixture(scope="class")
    def replay(self):
        app = build_jacobi_pingpong(iters=6, size=256)
        spec = GpuSpec(l2_bytes=512 * 1024)
        ktiler = KTiler(app.graph, spec=spec,
                        config=KTilerConfig(launch_overhead_us=1.0))
        plan = ktiler.plan(NOMINAL)
        return spec, tally_schedule(plan.schedule, app.graph, spec)

    def test_streamed_between_blocking_and_no_ig(self, replay):
        spec, tallies = replay
        gap = 2.0
        blocking = measure_at(tallies, spec, NOMINAL, gap)
        streamed = measure_with_streams(tallies, spec, NOMINAL, gap)
        assert streamed.busy_us == pytest.approx(blocking.busy_us)
        assert blocking.busy_us <= streamed.total_us <= blocking.total_us + 1e-9

    def test_zero_gap_fully_hidden(self, replay):
        spec, tallies = replay
        streamed = measure_with_streams(tallies, spec, NOMINAL, 0.0)
        assert streamed.exposed_gap_us == 0.0
        assert streamed.total_us == pytest.approx(streamed.busy_us)

    def test_long_kernels_hide_the_gap(self, replay):
        spec, tallies = replay
        # A gap far below the typical kernel duration disappears.
        streamed = measure_with_streams(tallies, spec, NOMINAL, 0.1)
        assert streamed.hidden_gap_fraction > 0.9

    def test_huge_gap_submission_bound(self, replay):
        spec, tallies = replay
        gap = 10_000.0
        streamed = measure_with_streams(tallies, spec, NOMINAL, gap)
        # Submission dominates: roughly one launch per gap.
        expected = (streamed.num_launches - 1) * gap
        assert streamed.total_us >= expected
        assert streamed.hidden_gap_fraction < 0.1

    def test_exposed_gap_monotone_in_gap(self, replay):
        spec, tallies = replay
        exposed = [
            measure_with_streams(tallies, spec, NOMINAL, g).exposed_gap_us
            for g in (0.0, 0.5, 1.0, 2.0, 8.0)
        ]
        assert exposed == sorted(exposed)


class TestWireFormat:
    """The serve JSON wire format round-trips schedules and timings.

    ``schedule_to_dict`` output must survive an actual JSON encode →
    decode (the daemon's response body) and deserialize to a schedule
    that re-encodes verbatim — plain ints only, no numpy scalars, no
    tuple/list drift.  Ditto ``StreamedMeasurement.as_dict``.
    """

    @pytest.fixture(scope="class")
    def plan_and_graph(self):
        app = build_pipeline(size=256)
        ktiler = KTiler(app.graph, config=KTilerConfig(launch_overhead_us=2.0))
        return ktiler.plan(NOMINAL), app.graph

    def test_schedule_roundtrips_through_json_text(self, plan_and_graph):
        plan, graph = plan_and_graph
        payload = schedule_to_dict(plan.schedule, graph)
        over_the_wire = json.loads(json.dumps(payload))
        assert over_the_wire == payload
        loaded = schedule_from_dict(over_the_wire, graph)
        assert schedule_to_dict(loaded, graph) == payload
        for sub in loaded:
            assert all(type(b) is int for b in sub.blocks)

    def test_wire_schedule_replays_identically(self, plan_and_graph):
        """Tallies (hence timing) survive the wire, not just structure."""
        plan, graph = plan_and_graph
        spec = GpuSpec()
        wire = json.loads(json.dumps(schedule_to_dict(plan.schedule, graph)))
        loaded = schedule_from_dict(wire, graph)
        original = tally_schedule(plan.schedule, graph, spec)
        replayed = tally_schedule(loaded, graph, spec)
        assert replayed.labels == original.labels
        assert replayed.hit_rate == original.hit_rate
        streamed_a = measure_with_streams(original, spec, NOMINAL, 2.0)
        streamed_b = measure_with_streams(replayed, spec, NOMINAL, 2.0)
        assert streamed_a == streamed_b

    def test_streamed_measurement_roundtrips_through_json(self, plan_and_graph):
        from repro.runtime.streams import StreamedMeasurement

        plan, graph = plan_and_graph
        spec = GpuSpec()
        tallies = tally_schedule(plan.schedule, graph, spec)
        streamed = measure_with_streams(tallies, spec, NOMINAL, 2.0)
        wire = json.loads(json.dumps(streamed.as_dict()))
        assert StreamedMeasurement.from_dict(wire) == streamed
        # Derived views on the wire match the dataclass properties.
        assert wire["total_us"] == pytest.approx(streamed.total_us)
        assert wire["hidden_gap_fraction"] == pytest.approx(
            streamed.hidden_gap_fraction
        )

    def test_serve_response_timing_is_wire_consistent(self):
        """The daemon's measure=True timing equals a local replay."""
        from repro.serve.client import ServeClient
        from repro.serve.server import start_server
        from repro.serve.service import PlanService
        from repro.serve.wire import parse_plan_request

        body = {"app": {"preset": "demo"}, "measure": True}
        with start_server(PlanService()) as handle:
            response = ServeClient(handle.url).plan(body)
        request = parse_plan_request(body)
        schedule = schedule_from_dict(response["schedule"], request.graph)
        tallies = tally_schedule(schedule, request.graph, request.spec)
        local = measure_with_streams(tallies, request.spec, request.freq)
        assert response["timing"]["streamed"] == json.loads(
            json.dumps(local.as_dict())
        )
