"""Tests for Algorithm 2 (ClusterTile)."""

import pytest

from repro.analyzer import (
    BlockMemoryLines,
    FootprintAccumulator,
    build_block_graph,
    run_instrumented,
)
from repro.apps import build_jacobi_pingpong, build_pipeline
from repro.core.cluster_tile import (
    cluster_sinks,
    cluster_tile,
    in_cluster_input_combo,
)
from repro.core.profiler import KernelProfiler, LazyPerfTables
from repro.core.subkernel import check_partition
from repro.errors import TilingError
from repro.gpusim import NOMINAL, GpuSpec


def analyze(graph, spec):
    run = run_instrumented(graph)
    bdg = build_block_graph(run.trace)
    lines = BlockMemoryLines.from_trace(
        run.trace, graph, spec.l2_line_bytes, spec.line_shift
    )
    return bdg, lines


@pytest.fixture(scope="module")
def pipeline_setup():
    spec = GpuSpec()
    app = build_pipeline(size=512, with_copies=False)
    bdg, lines = analyze(app.graph, spec)
    profiler = KernelProfiler(spec)
    tables = LazyPerfTables(profiler, NOMINAL)
    return app, spec, bdg, lines, tables


class TestHelpers:
    def test_cluster_sinks(self, pipeline_setup):
        app, *_ = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        assert cluster_sinks(graph, {a, b}) == [b]
        assert cluster_sinks(graph, {a}) == [a]

    def test_in_cluster_input_combo(self, pipeline_setup):
        app, *_ = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        assert in_cluster_input_combo(graph, b, {a, b}) == frozenset({"gray"})
        assert in_cluster_input_combo(graph, b, {b}) == frozenset()
        assert in_cluster_input_combo(graph, a, {a, b}) == frozenset()


class TestPipelineTiling:
    def test_tiling_partitions_blocks(self, pipeline_setup):
        app, spec, bdg, lines, tables = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        tiling = cluster_tile({a, b}, graph, bdg, lines, tables, spec.l2_bytes)
        assert tiling is not None
        check_partition(
            tiling.subkernels,
            {a: graph.node(a).num_blocks, b: graph.node(b).num_blocks},
        )
        assert tiling.rounds > 1  # 512x512 rgba does not fit 2 MB
        assert tiling.cost_us > 0

    def test_tiling_respects_dependencies(self, pipeline_setup):
        app, spec, bdg, lines, tables = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        tiling = cluster_tile({a, b}, graph, bdg, lines, tables, spec.l2_bytes)
        done = set()
        for sub in tiling.subkernels:
            for key in sub.keys():
                for pred in bdg.all_predecessors(key):
                    if pred[0] in (a, b):
                        assert pred in done
            done.update(sub.keys())

    def test_each_round_fits_cache(self, pipeline_setup):
        """Re-check the footprint constraint from the produced rounds."""
        app, spec, bdg, lines, tables = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        tiling = cluster_tile({a, b}, graph, bdg, lines, tables, spec.l2_bytes)
        rounds = {}
        for sub in tiling.subkernels:
            round_tag = sub.label.rsplit("/r", 1)[-1]
            rounds.setdefault(round_tag, []).extend(sub.keys())
        for keys in rounds.values():
            assert lines.footprint_bytes(keys) <= spec.l2_bytes

    def test_single_node_cluster(self, pipeline_setup):
        app, spec, bdg, lines, tables = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        tiling = cluster_tile({a}, graph, bdg, lines, tables, spec.l2_bytes)
        assert tiling is not None
        total = sum(s.num_blocks for s in tiling.subkernels)
        assert total == graph.node(a).num_blocks

    def test_untileable_when_cache_tiny(self, pipeline_setup):
        app, spec, bdg, lines, tables = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        # One consumer block + its producers exceed a 1 KB "cache".
        tiling = cluster_tile({a, b}, graph, bdg, lines, tables, 1024)
        assert tiling is None

    def test_empty_cluster_rejected(self, pipeline_setup):
        app, spec, bdg, lines, tables = pipeline_setup
        with pytest.raises(TilingError):
            cluster_tile(set(), app.graph, bdg, lines, tables, spec.l2_bytes)

    def test_launch_overhead_increases_cost(self, pipeline_setup):
        app, spec, bdg, lines, tables = pipeline_setup
        graph = app.graph
        a = graph.node_by_name("A.grayscale").node_id
        b = graph.node_by_name("B.downscale").node_id
        cheap = cluster_tile({a, b}, graph, bdg, lines, tables, spec.l2_bytes)
        costly = cluster_tile(
            {a, b}, graph, bdg, lines, tables, spec.l2_bytes,
            launch_overhead_us=10.0,
        )
        assert costly.cost_us == pytest.approx(
            cheap.cost_us + 10.0 * costly.num_launches
        )


class TestJacobiTiling:
    @pytest.fixture(scope="class")
    def jacobi_setup(self):
        spec = GpuSpec(l2_bytes=256 * 1024)
        app = build_jacobi_pingpong(iters=4, size=128)
        bdg, lines = analyze(app.graph, spec)
        profiler = KernelProfiler(spec)
        tables = LazyPerfTables(profiler, NOMINAL)
        return app, spec, bdg, lines, tables

    def test_stencil_chain_tiles_and_respects_order(self, jacobi_setup):
        app, spec, bdg, lines, tables = jacobi_setup
        graph = app.graph
        ji = [graph.node_by_name(f"JI.{i}").node_id for i in range(4)]
        tiling = cluster_tile(set(ji), graph, bdg, lines, tables, spec.l2_bytes)
        assert tiling is not None
        node_blocks = {n: graph.node(n).num_blocks for n in ji}
        check_partition(tiling.subkernels, node_blocks)
        done = set()
        for sub in tiling.subkernels:
            for key in sub.keys():
                for pred in bdg.all_predecessors(key):
                    if pred[0] in set(ji):
                        assert pred in done, f"{key} before {pred}"
            done.update(sub.keys())

    def test_interleaving_actually_happens(self, jacobi_setup):
        """Sub-kernels of different JI nodes alternate (tiling, not serial)."""
        app, spec, bdg, lines, tables = jacobi_setup
        graph = app.graph
        ji = [graph.node_by_name(f"JI.{i}").node_id for i in range(4)]
        tiling = cluster_tile(set(ji), graph, bdg, lines, tables, spec.l2_bytes)
        node_sequence = [s.node_id for s in tiling.subkernels]
        # A serial schedule would be sorted; tiling interleaves.
        assert node_sequence != sorted(node_sequence)
