"""Unit tests for the block dependency graph container."""

import pytest

from repro.errors import GraphError
from repro.graph.block_graph import BlockDependencyGraph


@pytest.fixture
def chain_graph():
    """Two nodes: node 1's block b depends on node 0's blocks b and b+1."""
    g = BlockDependencyGraph()
    for bid in range(4):
        g.add_block((0, bid), ())
    for bid in range(3):
        g.add_block((1, bid), [(0, bid), (0, bid + 1)])
    return g


class TestConstruction:
    def test_duplicate_block_rejected(self):
        g = BlockDependencyGraph()
        g.add_block((0, 0), ())
        with pytest.raises(GraphError):
            g.add_block((0, 0), ())

    def test_unknown_producer_rejected(self):
        g = BlockDependencyGraph()
        with pytest.raises(GraphError):
            g.add_block((1, 0), [(0, 0)])

    def test_intra_kernel_dependency_rejected(self):
        g = BlockDependencyGraph()
        g.add_block((0, 0), ())
        with pytest.raises(GraphError):
            g.add_block((0, 1), [(0, 0)])

    def test_anti_deps_exclude_raw_duplicates(self):
        g = BlockDependencyGraph()
        g.add_block((0, 0), ())
        g.add_block((1, 0), [(0, 0)], anti_producers=[(0, 0)])
        assert g.anti_producers((1, 0)) == ()
        assert g.producers((1, 0)) == ((0, 0),)


class TestQueries:
    def test_producers_consumers_inverse(self, chain_graph):
        for key in chain_graph:
            for prod in chain_graph.producers(key):
                assert key in chain_graph.consumers(prod)

    def test_unknown_block_raises(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.producers((9, 9))

    def test_blocks_of_node(self, chain_graph):
        assert chain_graph.blocks_of_node(0) == [0, 1, 2, 3]
        assert chain_graph.blocks_of_node(1) == [0, 1, 2]

    def test_num_dependencies(self, chain_graph):
        assert chain_graph.num_dependencies() == 6

    def test_contains_len_iter(self, chain_graph):
        assert (0, 0) in chain_graph
        assert (5, 0) not in chain_graph
        assert len(chain_graph) == 7
        assert len(list(chain_graph)) == 7


class TestTransitive:
    @pytest.fixture
    def deep_graph(self):
        """Three-level chain: (2,b) <- (1,b),(1,b+1) <- (0,*)."""
        g = BlockDependencyGraph()
        for bid in range(5):
            g.add_block((0, bid), ())
        for bid in range(4):
            g.add_block((1, bid), [(0, bid), (0, bid + 1)])
        for bid in range(3):
            g.add_block((2, bid), [(1, bid), (1, bid + 1)])
        return g

    def test_transitive_producers(self, deep_graph):
        deps = deep_graph.transitive_producers([(2, 0)])
        assert (1, 0) in deps and (1, 1) in deps
        assert {(0, 0), (0, 1), (0, 2)} <= deps
        assert (2, 0) not in deps  # seed excluded
        assert (0, 3) not in deps

    def test_restricted_to_nodes(self, deep_graph):
        deps = deep_graph.transitive_producers([(2, 0)], within_nodes={1, 2})
        assert all(key[0] == 1 for key in deps)
        # Node-0 deps are neither returned nor traversed.
        assert len(deps) == 2

    def test_dependencies_satisfied(self, deep_graph):
        done = {(1, 0), (1, 1)}
        assert deep_graph.dependencies_satisfied((2, 0), done)
        assert not deep_graph.dependencies_satisfied((2, 1), done)

    def test_dependencies_satisfied_with_restriction(self, deep_graph):
        # Restricting to node 2 only: all of (2,b)'s deps are outside.
        assert deep_graph.dependencies_satisfied(
            (2, 0), set(), within_nodes={2}
        )

    def test_anti_producers_respected(self):
        g = BlockDependencyGraph()
        g.add_block((0, 0), ())
        g.add_block((1, 0), [(0, 0)])
        g.add_block((2, 0), (), anti_producers=[(1, 0)])
        assert not g.dependencies_satisfied((2, 0), {(0, 0)})
        assert g.dependencies_satisfied((2, 0), {(0, 0)}, include_anti=False)
        deps = g.transitive_producers([(2, 0)])
        assert deps == {(1, 0), (0, 0)}

    def test_summary(self, deep_graph):
        text = deep_graph.summary()
        assert "12 blocks" in text
        assert "3 nodes" in text
