"""Unit tests for the DVFS configurations and the DRAM model."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.arch import GpuSpec
from repro.gpusim.dram import DramModel
from repro.gpusim.freq import FIG3_CONFIGS, FIG5_CONFIGS, NOMINAL, FrequencyConfig


class TestFrequencyConfig:
    def test_conversions_roundtrip(self):
        freq = FrequencyConfig(1000.0, 2000.0)
        assert freq.cycles_to_us(1000.0) == pytest.approx(1.0)
        assert freq.us_to_cycles(freq.cycles_to_us(12345.0)) == pytest.approx(12345.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FrequencyConfig(0.0, 100.0)
        with pytest.raises(ConfigurationError):
            FrequencyConfig(100.0, -1.0)

    def test_label(self):
        assert FrequencyConfig(405.0, 810.0).label == "(405,810)"

    def test_paper_config_sets(self):
        # The exact operating points of Figures 3 and 5.
        assert (405.0, 405.0) == (FIG3_CONFIGS[0].gpu_mhz, FIG3_CONFIGS[0].mem_mhz)
        assert len(FIG3_CONFIGS) == 4
        assert len(FIG5_CONFIGS) == 4
        assert NOMINAL in FIG5_CONFIGS
        assert FrequencyConfig(405.0, 810.0) in FIG5_CONFIGS


class TestDramModel:
    @pytest.fixture
    def dram(self):
        return DramModel.from_spec(GpuSpec())

    def test_latency_decreases_with_mem_freq(self, dram):
        slow = dram.miss_latency_ns(FrequencyConfig(1324.0, 810.0))
        fast = dram.miss_latency_ns(FrequencyConfig(1324.0, 5010.0))
        assert slow > fast

    def test_latency_cycles_scale_with_gpu_freq(self, dram):
        low = dram.miss_latency_cycles(FrequencyConfig(405.0, 2505.0))
        high = dram.miss_latency_cycles(FrequencyConfig(1324.0, 2505.0))
        assert high / low == pytest.approx(1324.0 / 405.0)

    def test_bandwidth_proportional_to_mem_freq(self, dram):
        bw1 = dram.bandwidth_bytes_per_s(FrequencyConfig(1324.0, 1600.0))
        bw2 = dram.bandwidth_bytes_per_s(FrequencyConfig(1324.0, 3200.0))
        assert bw2 == pytest.approx(2 * bw1)

    def test_nominal_bandwidth_is_gddr5_class(self, dram):
        # 5010 MHz effective on a 128-bit bus: ~80 GB/s.
        bw = dram.bandwidth_bytes_per_s(NOMINAL)
        assert 60e9 < bw < 100e9

    def test_transfer_cycles_linear(self, dram):
        one = dram.transfer_cycles(1024, NOMINAL)
        two = dram.transfer_cycles(2048, NOMINAL)
        assert two == pytest.approx(2 * one)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            DramModel(-1.0, 0.0, 100.0, 16)

    def test_rejects_bad_bus(self):
        with pytest.raises(ConfigurationError):
            DramModel(1.0, 1.0, 100.0, 0)
