"""Differential tests: FastPartition vs the reference Partition.

The fast planner backend's contract is *bit-identical* behaviour, not
approximate agreement: for any graph and any merge script both engines
must return the same ``can_merge`` verdicts, maintain the same clusters
and quotient adjacency, produce the same deterministic ``topo_order``,
and pass the same ``validate_against`` structural checks — so Algorithm
1 adopts the same merges in the same order and emits the same schedule
under either backend.  Only the *validity-family* work counters
(``merge_probes`` / ``reach_repairs``) are planner-backend-local; every
other counter must match too.

Structure:

* hypothesis-generated DAGs driven through identical merge scripts,
  comparing the full observable state after every step;
* adversarial hand-built shapes (diamond skip-merges, deep chains);
* end-to-end: ``KTiler.plan`` on probe graphs and a real app under both
  backends — byte-identical schedule documents, identical adopted-merge
  trace sequences, identical non-validity work counters;
* the backend selector's precedence and failure modes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Partition
from repro.core.fast_cluster import (
    PLANNER_BACKEND_ENV_VAR,
    PLANNER_BACKENDS,
    FastPartition,
    make_partition,
    resolve_planner_backend,
)
from repro.core.work import VALIDITY_COUNTERS, PlannerWork
from repro.errors import ConfigurationError, GraphError


# ----------------------------------------------------------------------
# Minimal structural graph stub (both backends only read node_id/src/dst)
# ----------------------------------------------------------------------
class _Node:
    __slots__ = ("node_id",)

    def __init__(self, node_id: int):
        self.node_id = node_id


class _Edge:
    __slots__ = ("src", "dst")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst


class _StubGraph:
    """Just enough of KernelGraph for partition construction/validation."""

    def __init__(self, n: int, edges):
        self._nodes = [_Node(i) for i in range(n)]
        self.edges = [_Edge(s, d) for s, d in edges]

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


def make_pair(graph, work_ref=None, work_fast=None):
    ref = Partition.singletons(graph)
    fast = FastPartition.singletons(graph, work=work_fast)
    return ref, fast


def assert_same_state(ref: Partition, fast: FastPartition, graph) -> None:
    """Every observable the planner reads must agree."""
    assert ref.cluster_ids() == fast.cluster_ids()
    assert len(ref) == len(fast)
    for cid in ref.cluster_ids():
        assert ref.members(cid) == fast.members(cid)
        assert ref.successors(cid) == fast.successors(cid)
        assert cid in ref and cid in fast
    for node in graph:
        assert ref.cluster_of(node.node_id) == fast.cluster_of(node.node_id)
    assert ref.topo_order() == fast.topo_order()
    assert ref.is_valid() == fast.is_valid()
    ref.validate_against(graph)
    fast.validate_against(graph)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def dags(draw, max_nodes: int = 16):
    """A random DAG over dense node ids (edges always low -> high)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(pairs),
            unique=True,
            max_size=min(len(pairs), 3 * n),
        )
    )
    return _StubGraph(n, edges)


class TestDifferentialMergeScripts:
    @settings(max_examples=120, deadline=None)
    @given(graph=dags(), data=st.data())
    def test_identical_verdicts_and_state(self, graph, data):
        """Same merge script => same verdicts, clusters, order, closure."""
        ref, fast = make_pair(graph)
        assert_same_state(ref, fast, graph)
        steps = data.draw(st.integers(min_value=1, max_value=len(graph)))
        for _ in range(steps):
            ids = ref.cluster_ids()
            if len(ids) < 2:
                break
            a = data.draw(st.sampled_from(ids))
            b = data.draw(st.sampled_from([c for c in ids if c != a]))
            verdict = ref.can_merge(a, b)
            assert fast.can_merge(a, b) == verdict
            if verdict:
                ref = ref.merged(a, b)
                fast = fast.merged(a, b)
                assert_same_state(ref, fast, graph)

    @settings(max_examples=60, deadline=None)
    @given(graph=dags(max_nodes=12), data=st.data())
    def test_every_pair_agrees_after_random_merges(self, graph, data):
        """After a random valid-merge prefix, probe *all* remaining pairs."""
        ref, fast = make_pair(graph)
        for _ in range(data.draw(st.integers(min_value=0, max_value=6))):
            ids = ref.cluster_ids()
            if len(ids) < 2:
                break
            a = data.draw(st.sampled_from(ids))
            b = data.draw(st.sampled_from([c for c in ids if c != a]))
            if ref.can_merge(a, b) and fast.can_merge(a, b):
                ref = ref.merged(a, b)
                fast = fast.merged(a, b)
        ids = ref.cluster_ids()
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                assert ref.can_merge(a, b) == fast.can_merge(a, b), (a, b)


class TestAdversarialShapes:
    def test_diamond_skip_merge_invalid_in_both(self):
        # 0 -> {1, 2} -> 3: merging 0 with 3 around the middle is a cycle.
        graph = _StubGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        ref, fast = make_pair(graph)
        for a, b in ((0, 3), (3, 0)):
            assert not ref.can_merge(a, b)
            assert not fast.can_merge(a, b)
        # The sides are mergeable; afterwards 0-3 stays invalid (path
        # through the remaining side), and merging the remaining side in
        # makes everything one cluster's neighbour.
        ref, fast = ref.merged(0, 1), fast.merged(0, 1)
        assert_same_state(ref, fast, graph)
        assert ref.can_merge(0, 3) == fast.can_merge(0, 3) is False
        assert ref.can_merge(0, 2) == fast.can_merge(0, 2)

    def test_chain_collapses_front_to_back(self):
        n = 24
        graph = _StubGraph(n, [(i, i + 1) for i in range(n - 1)])
        ref, fast = make_pair(graph)
        for i in range(1, n):
            # The next chain node is always directly mergeable; skipping
            # ahead is not (path through the intermediate cluster).
            assert ref.can_merge(0, i) is fast.can_merge(0, i) is True
            if i + 1 < n:
                assert ref.can_merge(0, i + 1) is fast.can_merge(0, i + 1) is False
            ref = ref.merged(0, i)
            fast = fast.merged(0, i)
            assert_same_state(ref, fast, graph)
        assert len(fast) == 1

    def test_wide_fan_everything_mergeable_with_root(self):
        n = 9
        graph = _StubGraph(n, [(0, i) for i in range(1, n)])
        ref, fast = make_pair(graph)
        for i in range(1, n):
            assert ref.can_merge(0, i) is fast.can_merge(0, i) is True
        # Two leaves are independent — mergeable in both.
        assert ref.can_merge(1, 2) is fast.can_merge(1, 2) is True

    def test_word_boundary_sizes(self):
        """Exercise bitset rows at 1/2/3-word widths (n near 64 and 128)."""
        for n in (63, 64, 65, 127, 129):
            graph = _StubGraph(n, [(i, i + 1) for i in range(n - 1)])
            ref, fast = make_pair(graph)
            assert not fast.can_merge(0, n - 1)
            assert ref.can_merge(0, n - 1) is False
            ref, fast = ref.merged(0, 1), fast.merged(0, 1)
            assert ref.can_merge(0, 2) is fast.can_merge(0, 2) is True
            fast.validate_against(graph)


class TestFastPartitionContract:
    def test_snapshot_is_isolated(self):
        graph = _StubGraph(4, [(0, 1), (1, 2), (2, 3)])
        fast = FastPartition.singletons(graph)
        snap = fast.snapshot()
        fast.merged(0, 1)
        assert len(fast) == 3
        assert len(snap) == 4
        assert snap.cluster_ids() == [0, 1, 2, 3]
        snap.validate_against(graph)
        # The snapshot's reachability index is its own storage.
        assert snap.can_merge(0, 1) is True

    def test_reference_snapshot_is_self(self):
        graph = _StubGraph(3, [(0, 1), (1, 2)])
        ref = Partition.singletons(graph)
        assert ref.snapshot() is ref

    def test_merged_is_in_place_and_returns_self(self):
        graph = _StubGraph(3, [(0, 1), (1, 2)])
        fast = FastPartition.singletons(graph)
        assert fast.merged(0, 1) is fast
        assert len(fast) == 2

    def test_error_parity(self):
        graph = _StubGraph(3, [(0, 1), (1, 2)])
        ref, fast = make_pair(graph)
        for part in (ref, fast):
            with pytest.raises(GraphError):
                part.can_merge(0, 0)
            with pytest.raises(GraphError):
                part.cluster_of(99)
            with pytest.raises(GraphError):
                part.members(99)
        # The fast backend guards unknown clusters explicitly (the
        # reference's BFS would KeyError on its own dict lookup).
        with pytest.raises(GraphError):
            fast.can_merge(0, 99)

    def test_dense_ids_required(self):
        class _SparseGraph(_StubGraph):
            def __init__(self):
                self._nodes = [_Node(0), _Node(2)]
                self.edges = []

        with pytest.raises(GraphError):
            FastPartition.singletons(_SparseGraph())

    def test_merge_preview_parity(self):
        graph = _StubGraph(4, [(0, 1), (0, 2), (1, 3)])
        ref, fast = make_pair(graph)
        assert ref.merge_preview(0, 1) == fast.merge_preview(0, 1)
        ref, fast = ref.merged(0, 1), fast.merged(0, 1)
        assert ref.merge_preview(0, 2) == fast.merge_preview(0, 2)

    def test_summary_parity(self):
        graph = _StubGraph(4, [(0, 1), (1, 2), (2, 3)])
        ref, fast = make_pair(graph)
        assert ref.summary() == fast.summary()
        ref, fast = ref.merged(0, 1), fast.merged(0, 1)
        assert ref.summary() == fast.summary()


class TestWorkCharging:
    def test_singletons_charges_index_construction(self):
        n = 70  # two words
        graph = _StubGraph(n, [(i, i + 1) for i in range(n - 1)])
        work = PlannerWork()
        FastPartition.singletons(graph, work=work)
        assert work.reach_repairs == 2 * n * 2
        assert work.merge_probes == 0

    def test_can_merge_charges_words_with_short_circuit(self):
        graph = _StubGraph(3, [(0, 1), (1, 2)])
        fast = FastPartition.singletons(graph)
        work = PlannerWork()
        # 0 -> 1 -> 2: first direction finds the path, second skipped.
        assert not fast.can_merge(0, 2, work=work)
        assert work.merge_probes == 1
        # Independent direction check runs both ANDs.
        work2 = PlannerWork()
        assert fast.can_merge(0, 1, work=work2)
        assert work2.merge_probes == 2

    def test_merged_charges_repair_rows(self):
        graph = _StubGraph(4, [(0, 1), (1, 2), (2, 3)])
        fast = FastPartition.singletons(graph)
        work = PlannerWork()
        # Merge 1 and 2: ancestors {0}, descendants {3} => (1+1+2)*words.
        fast.merged(1, 2, work=work)
        assert work.reach_repairs == 4

    def test_reference_merged_charges_nothing(self):
        graph = _StubGraph(3, [(0, 1), (1, 2)])
        ref = Partition.singletons(graph)
        work = PlannerWork()
        ref.merged(0, 1, work=work)
        assert work.as_dict() == PlannerWork().as_dict()


class TestBackendSelector:
    def test_precedence_arg_over_env_over_default(self, monkeypatch):
        monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
        assert resolve_planner_backend() == "reference"
        assert resolve_planner_backend(default="fast") == "fast"
        monkeypatch.setenv(PLANNER_BACKEND_ENV_VAR, "fast")
        assert resolve_planner_backend() == "fast"
        assert resolve_planner_backend("reference") == "reference"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError):
            resolve_planner_backend("turbo")
        monkeypatch.setenv(PLANNER_BACKEND_ENV_VAR, "warp")
        with pytest.raises(ConfigurationError):
            resolve_planner_backend()

    def test_make_partition_picks_the_backend(self, monkeypatch):
        monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
        graph = _StubGraph(3, [(0, 1), (1, 2)])
        assert isinstance(make_partition(graph), Partition)
        assert isinstance(make_partition(graph, "fast"), FastPartition)
        monkeypatch.setenv(PLANNER_BACKEND_ENV_VAR, "fast")
        assert isinstance(make_partition(graph), FastPartition)

    def test_backend_names(self):
        assert Partition.backend_name == "reference"
        assert FastPartition.backend_name == "fast"
        assert set(PLANNER_BACKENDS) == {"reference", "fast"}


# ----------------------------------------------------------------------
# End to end: the whole planner pipeline under both backends
# ----------------------------------------------------------------------
def _plan(app, planner_backend: str, tracer=None):
    from repro.core import KTiler, KTilerConfig
    from repro.obs import NULL_TRACER

    ktiler = KTiler(
        app.graph,
        config=KTilerConfig(launch_overhead_us=2.0),
        tracer=tracer if tracer is not None else NULL_TRACER,
        planner_backend=planner_backend,
    )
    return ktiler.plan()


def _merge_trace(tracer):
    """The adopted/rejected/invalid decision sequence, timestamps dropped."""
    out = []
    for event in tracer.events:
        if event.get("name") != "sched.merge":
            continue
        args = dict(event["args"])
        out.append(tuple(sorted(args.items())))
    return out


@pytest.mark.parametrize(
    "shape,kernels", [("chain", 24), ("fan", 24), ("grid", 25)]
)
def test_end_to_end_probe_graphs_bit_identical(shape, kernels, monkeypatch):
    from repro.apps.synthetic import build_probe_graph
    from repro.core.serialize import schedule_to_dict
    from repro.obs import Tracer

    monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
    docs, works, traces = {}, {}, {}
    for backend in PLANNER_BACKENDS:
        app = build_probe_graph(shape=shape, kernels=kernels, size=32, seed=0)
        tracer = Tracer()
        plan = _plan(app, backend, tracer)
        docs[backend] = json.dumps(
            schedule_to_dict(plan.schedule), sort_keys=True
        )
        works[backend] = plan.stats.work.as_dict()
        traces[backend] = _merge_trace(tracer)
        assert plan.stats.adopted_merges + plan.stats.rejected_merges > 0
    assert docs["reference"] == docs["fast"]
    assert traces["reference"] == traces["fast"]
    assert traces["reference"], "expected merge decisions in the trace"
    for counter, value in works["reference"].items():
        if counter in VALIDITY_COUNTERS:
            continue
        assert works["fast"][counter] == value, counter


def test_end_to_end_real_app_bit_identical(monkeypatch):
    from repro.apps import build_jacobi_pingpong
    from repro.core.serialize import schedule_to_dict

    monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
    docs = {}
    stats = {}
    for backend in PLANNER_BACKENDS:
        app = build_jacobi_pingpong(iters=4, size=64)
        plan = _plan(app, backend)
        docs[backend] = json.dumps(
            schedule_to_dict(plan.schedule), sort_keys=True
        )
        stats[backend] = (
            plan.stats.adopted_merges,
            plan.stats.rejected_merges,
            plan.stats.invalid_partitions,
            plan.stats.merge_attempts,
        )
    assert docs["reference"] == docs["fast"]
    assert stats["reference"] == stats["fast"]


def test_validity_counters_are_backend_local(monkeypatch):
    """The two backends charge the validity family differently (by
    design); both are deterministic run-to-run."""
    from repro.apps.synthetic import build_probe_graph

    monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)

    def run(backend):
        app = build_probe_graph(shape="chain", kernels=24, size=32, seed=0)
        return _plan(app, backend).stats.work.as_dict()

    ref1, ref2 = run("reference"), run("reference")
    fast1, fast2 = run("fast"), run("fast")
    assert ref1 == ref2
    assert fast1 == fast2
    assert ref1["reach_repairs"] == 0
    assert fast1["reach_repairs"] > 0
    assert fast1["merge_probes"] < ref1["merge_probes"]
