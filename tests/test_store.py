"""Artifact-store tests: key sensitivity, robustness, concurrency.

The store's safety argument is content addressing: a key is the sha256
of a canonical fingerprint of *everything the artifact depends on*, so
a warm entry can only ever be served for the exact configuration that
produced it.  These tests attack that argument from three sides:

* **key sensitivity** — perturbing any field of the kernel geometry,
  the GpuSpec (L2 size included), the frequency, or the KTiler config
  must change the key; re-describing the identical configuration must
  not;
* **corruption** — truncated, garbage, or wrong-version entries must
  fall back to a recompute with a ``RuntimeWarning``, never a crash or
  a wrong result;
* **concurrency** — simultaneous writers of the same entry (parallel
  workers, two CLI runs) must never produce a torn read.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import warnings

import pytest

from repro.apps.synthetic import build_jacobi_pingpong
from repro.core.fast_cluster import resolve_planner_backend
from repro.core.ktiler import KTiler, KTilerConfig
from repro.gpusim import GpuSpec
from repro.gpusim.freq import NOMINAL, FrequencyConfig
from repro.store import ArtifactStore, NULL_STORE, STORE_ENV_VAR, resolve_store
from repro.store.artifacts import plan_key, profile_key, trace_key
from repro.store.fingerprint import (
    STORE_VERSION,
    content_key,
    gpu_fingerprint,
    kernel_fingerprint,
)


def _jacobi_kernel(size: int = 64):
    graph = build_jacobi_pingpong(iters=2, size=size).graph
    return graph, graph.node_by_name("JI.0").kernel


# ----------------------------------------------------------------------
# Key sensitivity
# ----------------------------------------------------------------------
def test_identical_configuration_reproduces_the_key(tmp_path):
    store = ArtifactStore(tmp_path)
    graph_a, kernel_a = _jacobi_kernel()
    graph_b, kernel_b = _jacobi_kernel()  # fresh but identical objects
    spec = GpuSpec()
    key_a = store.key_for(profile_key(kernel_a, spec, (0.5, 1.0), frozenset()))
    key_b = store.key_for(profile_key(kernel_b, spec, (0.5, 1.0), frozenset()))
    assert key_a == key_b
    assert store.key_for(trace_key(graph_a, spec)) == store.key_for(
        trace_key(graph_b, spec)
    )


def test_kernel_geometry_perturbations_change_the_key(tmp_path):
    store = ArtifactStore(tmp_path)
    _, base = _jacobi_kernel(size=64)
    _, resized = _jacobi_kernel(size=96)  # different grid + buffers
    spec = GpuSpec()

    def key(kernel):
        return store.key_for(profile_key(kernel, spec, (1.0,), frozenset()))

    assert key(base) != key(resized)
    # The fingerprint itself must see geometry, work, and buffer layout.
    fp = kernel_fingerprint(base)
    for field in ("grid", "block", "instrs_per_thread", "inputs", "name"):
        assert field in fp


def test_every_gpu_spec_field_changes_the_key():
    """Each compared GpuSpec field (L2 size included) is key-relevant."""
    base = GpuSpec()
    base_fp = canonical = content_key(gpu_fingerprint(base))
    for field in dataclasses.fields(GpuSpec):
        if field.name == "extras":  # advisory, deliberately excluded
            continue
        value = getattr(base, field.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            # Doubling preserves the spec's structural invariants
            # (power-of-two line size, l2 divisibility).
            perturbed = dataclasses.replace(
                base, **{field.name: value * 2 if value else 1}
            )
        elif isinstance(value, str):
            perturbed = dataclasses.replace(base, **{field.name: value + "-x"})
        else:
            continue
        assert content_key(gpu_fingerprint(perturbed)) != base_fp, (
            f"GpuSpec.{field.name} does not affect the store key"
        )


def test_l2_size_and_frequency_change_plan_keys(tmp_path):
    store = ArtifactStore(tmp_path)
    graph, _ = _jacobi_kernel()
    config = KTilerConfig()
    base = store.key_for(plan_key(graph, GpuSpec(), config, NOMINAL))
    small_l2 = store.key_for(
        plan_key(graph, GpuSpec(l2_bytes=128 * 1024), config, NOMINAL)
    )
    other_freq = store.key_for(
        plan_key(
            graph, GpuSpec(), config,
            FrequencyConfig(gpu_mhz=NOMINAL.gpu_mhz, mem_mhz=NOMINAL.mem_mhz / 2),
        )
    )
    other_config = store.key_for(
        plan_key(graph, GpuSpec(), KTilerConfig(threshold_us=5.0), NOMINAL)
    )
    other_planner = store.key_for(
        plan_key(graph, GpuSpec(), config, NOMINAL, planner_backend="fast")
    )
    assert len({base, small_l2, other_freq, other_config, other_planner}) == 5


def test_store_version_is_part_of_every_key(tmp_path, monkeypatch):
    store = ArtifactStore(tmp_path)
    graph, _ = _jacobi_kernel()
    payload = trace_key(graph, GpuSpec())
    before = store.key_for(payload)
    monkeypatch.setattr("repro.store.store.STORE_VERSION", STORE_VERSION + 1)
    assert store.key_for(payload) != before


# ----------------------------------------------------------------------
# Round trip, hit/miss accounting
# ----------------------------------------------------------------------
def test_roundtrip_and_counters(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key_for({"artifact": "demo", "x": 1})
    assert store.get("profile", key) is None
    assert store.misses == 1
    store.put("profile", key, {"value": [1, 2, 3]})
    assert store.writes == 1
    assert store.get("profile", key) == {"value": [1, 2, 3]}
    assert store.hits == 1
    # Entries are sharded under <root>/<kind>/<key[:2]>/.
    assert os.path.exists(store.path("profile", key))


def test_null_store_misses_and_drops(tmp_path):
    key = NULL_STORE.key_for({"artifact": "demo"})
    NULL_STORE.put("profile", key, {"value": 1})
    assert NULL_STORE.get("profile", key) is None
    assert not NULL_STORE.enabled


def test_resolve_store_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(STORE_ENV_VAR, raising=False)
    assert resolve_store() is NULL_STORE
    assert resolve_store(cache_dir=tmp_path / "a").root == str(tmp_path / "a")
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env"))
    assert resolve_store().root == str(tmp_path / "env")
    assert resolve_store(cache_dir=tmp_path / "a").root == str(tmp_path / "a")
    assert resolve_store(no_cache=True) is NULL_STORE


# ----------------------------------------------------------------------
# Corruption fallback
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "corruption",
    ["truncate", "garbage", "wrong_version", "not_a_dict"],
)
def test_corrupted_entry_warns_and_recomputes(tmp_path, corruption):
    store = ArtifactStore(tmp_path)
    key = store.key_for({"artifact": "demo"})
    store.put("trace", key, {"value": 42})
    path = store.path("trace", key)
    if corruption == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
    elif corruption == "garbage":
        with open(path, "w") as fh:
            fh.write("not json at all {{{")
    elif corruption == "wrong_version":
        envelope = json.loads(open(path).read())
        envelope["store_version"] = -1
        with open(path, "w") as fh:
            json.dump(envelope, fh)
    else:
        with open(path, "w") as fh:
            json.dump(["wrong", "shape"], fh)
    with pytest.warns(RuntimeWarning):
        assert store.get("trace", key) is None
    assert store.corrupt == 1
    # The caller's recompute-and-put must heal the entry.
    store.put("trace", key, {"value": 42})
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert store.get("trace", key) == {"value": 42}


def test_corrupted_plan_entry_falls_back_to_scheduling(tmp_path):
    """End to end: a damaged plan artifact must not break KTiler.plan."""
    graph = build_jacobi_pingpong(iters=3, size=64).graph
    spec = GpuSpec(l2_bytes=64 * 1024, launch_gap_us=1.0)
    config = KTilerConfig(launch_overhead_us=1.0)
    store = ArtifactStore(tmp_path)
    expected = KTiler(graph, spec=spec, config=config).plan(NOMINAL)
    KTiler(graph, spec=spec, config=config, store=store).plan(NOMINAL)
    # The warm entry lives under whichever planner backend the run
    # resolved (KTiler honours KTILER_PLANNER_BACKEND) — key it the
    # same way or the corruption below would miss the artifact.
    key = store.key_for(
        plan_key(
            graph, spec, config, NOMINAL,
            planner_backend=resolve_planner_backend(),
        )
    )
    with open(store.path("plan", key), "w") as fh:
        fh.write('{"half an envel')
    with pytest.warns(RuntimeWarning):
        recovered = KTiler(
            graph, spec=spec, config=config, store=ArtifactStore(tmp_path)
        ).plan(NOMINAL)
    assert [
        (s.node_id, s.blocks) for s in recovered.schedule
    ] == [(s.node_id, s.blocks) for s in expected.schedule]


# ----------------------------------------------------------------------
# Concurrent writers
# ----------------------------------------------------------------------
def _hammer(args) -> int:
    """Write the same entry many times while re-reading it."""
    root, key, rounds = args
    store = ArtifactStore(root)
    payload = {"value": list(range(200))}
    good = 0
    for _ in range(rounds):
        store.put("trace", key, payload)
        seen = store.get("trace", key)
        if seen == payload:
            good += 1
    return good


def test_concurrent_writers_never_tear(tmp_path):
    """N processes writing one entry: every read sees a complete payload.

    Same key means same content, so "last write wins" is indistinguishable
    from any other interleaving — what must never happen is a reader
    observing a partially written file (the atomic temp+rename contract).
    """
    store = ArtifactStore(tmp_path)
    key = store.key_for({"artifact": "hammer"})
    rounds = 50
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    with ctx.Pool(4) as pool:
        with warnings.catch_warnings():
            # A torn read would surface as a corruption RuntimeWarning.
            warnings.simplefilter("error", RuntimeWarning)
            results = pool.map(_hammer, [(str(tmp_path), key, rounds)] * 4)
    assert results == [rounds] * 4
    # No stray temp files left behind.
    directory = os.path.dirname(store.path("trace", key))
    leftovers = [f for f in os.listdir(directory) if f.startswith(".tmp-")]
    assert leftovers == []
