"""Tests for the observability subsystem (``repro.obs``).

Covers the counter registry (label aggregation), the tracer pair
(Tracer / NullTracer), the Chrome-trace exporter (JSON round-trip,
one slice per launch, monotone counter tracks), the metric dumps
(Prometheus text + JSON), and the NullTracer overhead guarantee.
"""

import json
import os
import time

import pytest

from repro.apps import build_pipeline
from repro.apps.synthetic import build_jacobi_pingpong
from repro.core import KTiler, KTilerConfig
from repro.gpusim import GpuSimulator, GpuSpec, NOMINAL
from repro.gpusim.cache import SetAssocCache
from repro.gpusim.timeline import Timeline
from repro.obs import (
    NULL_TRACER,
    CounterRegistry,
    NullRegistry,
    NullTracer,
    Tracer,
    build_chrome_trace,
    metrics_to_json,
    metrics_to_prometheus,
    timeline_trace_events,
    write_chrome_trace,
    write_metrics,
)
from repro.runtime import compare_default_vs_ktiler
from repro.runtime.report import ComparisonReport


class TestCounterRegistry:
    def test_counter_accumulates(self):
        reg = CounterRegistry()
        reg.inc("cache.hits", 3, kernel="jacobi")
        reg.inc("cache.hits", 2, kernel="jacobi")
        assert reg.get("cache.hits", kernel="jacobi") == 5
        assert reg.kind("cache.hits") == "counter"

    def test_gauge_last_write_wins(self):
        reg = CounterRegistry()
        reg.set_gauge("occupancy", 0.25, sm=0)
        reg.set_gauge("occupancy", 0.75, sm=0)
        assert reg.get("occupancy", sm=0) == 0.75
        assert reg.kind("occupancy") == "gauge"

    def test_labels_are_order_insensitive(self):
        reg = CounterRegistry()
        reg.inc("x", 1, a="1", b="2")
        reg.inc("x", 1, b="2", a="1")
        assert reg.get("x", a="1", b="2") == 2

    def test_label_values_stringified(self):
        reg = CounterRegistry()
        reg.inc("x", 1, grid=128)
        assert reg.get("x", grid="128") == 1

    def test_total_aggregates_across_labels(self):
        reg = CounterRegistry()
        reg.inc("cache.hits", 10, kernel="jacobi", subkernel="0")
        reg.inc("cache.hits", 20, kernel="jacobi", subkernel="1")
        reg.inc("cache.hits", 5, kernel="warp", subkernel="0")
        assert reg.total("cache.hits") == 35
        assert reg.total("cache.hits", kernel="jacobi") == 30
        assert reg.total("cache.hits", subkernel="0") == 15
        assert reg.total("cache.hits", kernel="warp", subkernel="0") == 5
        assert reg.total("cache.hits", kernel="nope") == 0.0
        assert reg.total("no.such.family") == 0.0

    def test_get_is_exact_match(self):
        reg = CounterRegistry()
        reg.inc("x", 1, kernel="jacobi", subkernel="0")
        assert reg.get("x", kernel="jacobi") == 0.0
        assert reg.get("x") == 0.0

    def test_names_sorted_and_container_protocol(self):
        reg = CounterRegistry()
        reg.inc("b.metric")
        reg.set_gauge("a.metric", 1.0)
        assert reg.names() == ["a.metric", "b.metric"]
        assert "a.metric" in reg
        assert "c.metric" not in reg
        assert len(reg) == 2

    def test_samples_and_as_dict(self):
        reg = CounterRegistry()
        reg.inc("hits", 4, kernel="k")
        samples = reg.samples("hits")
        assert samples == [({"kernel": "k"}, 4.0)]
        d = reg.as_dict()
        assert d["hits"]["kind"] == "counter"
        assert d["hits"]["samples"] == [{"labels": {"kernel": "k"}, "value": 4.0}]

    def test_clear(self):
        reg = CounterRegistry()
        reg.inc("x")
        reg.clear()
        assert len(reg) == 0

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.inc("x", 5, kernel="k")
        reg.set_gauge("y", 1.0)
        assert len(reg) == 0
        assert reg.names() == []
        assert reg.total("x") == 0.0
        assert "x" not in reg


class TestTracer:
    def test_span_records_complete_event(self):
        tr = Tracer()
        with tr.span("work", cat="test", n=3):
            pass
        (ev,) = tr.events
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["cat"] == "test"
        assert ev["args"] == {"n": 3}
        assert ev["dur"] >= 0.0

    def test_span_survives_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("doomed"):
                raise ValueError("boom")
        assert len(tr.events) == 1

    def test_instant_and_counter(self):
        tr = Tracer()
        tr.instant("decision", cat="sched", verdict="adopted")
        tr.counter("rate", {"l2": 0.5}, ts_us=12.0)
        inst, ctr = tr.events
        assert inst["ph"] == "i" and inst["s"] == "t"
        assert ctr["ph"] == "C" and ctr["ts"] == 12.0

    def test_sim_span_uses_given_timestamps(self):
        tr = Tracer()
        tr.sim_span("JI.0", ts_us=100.0, dur_us=7.5, blocks=4)
        (ev,) = tr.sim_events
        assert ev["ts"] == 100.0 and ev["dur"] == 7.5
        assert not tr.events  # separate domain

    def test_attach_timeline_replaces_by_label(self):
        tr = Tracer()
        a, b = Timeline(), Timeline()
        tr.attach_timeline("run", a)
        tr.attach_timeline("run", b)
        assert tr.timelines == {"run": b}

    def test_null_tracer_is_inert(self):
        nt = NullTracer()
        assert nt.enabled is False
        with nt.span("x", anything=1):
            pass
        nt.instant("x")
        nt.counter("x", {"v": 1.0})
        nt.sim_span("x", 0.0, 1.0)
        nt.attach_timeline("x", Timeline())
        nt.metrics.inc("x", 5)
        assert nt.events == [] and nt.sim_events == [] and nt.timelines == {}
        assert len(nt.metrics) == 0
        assert nt.now_us() == 0.0

    def test_null_tracer_singleton_exported(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled


class TestTimelineMeta:
    def test_meta_stored_on_event(self):
        tl = Timeline()
        ev = tl.add_launch("k", 5.0, meta={"l2_hit_rate": 0.5})
        assert ev.meta == {"l2_hit_rate": 0.5}

    def test_meta_defaults_to_none(self):
        tl = Timeline()
        assert tl.add_launch("k", 5.0).meta is None

    def test_gap_none_falls_back_to_timeline_gap(self):
        tl = Timeline(launch_gap_us=3.0)
        first = tl.add_launch("a", 1.0)
        second = tl.add_launch("b", 1.0)
        assert first.gap_before_us == 0.0  # first launch never pays
        assert second.gap_before_us == 3.0

    def test_explicit_zero_gap_overrides(self):
        tl = Timeline(launch_gap_us=3.0)
        tl.add_launch("a", 1.0)
        ev = tl.add_launch("b", 1.0, gap_us=0.0)
        assert ev.gap_before_us == 0.0


class TestChromeTrace:
    def _traced_run(self):
        tracer = Tracer()
        app = build_pipeline(size=128)
        ktiler = KTiler(
            app.graph,
            config=KTilerConfig(launch_overhead_us=2.0),
            tracer=tracer,
        )
        compare_default_vs_ktiler(ktiler, [NOMINAL])
        return tracer

    def test_round_trip_and_structure(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        trace = json.loads(path.read_text())  # must be valid JSON
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events, "traced run produced no events"
        for ev in events:
            assert ev["ph"] in ("X", "C", "i", "M")
            assert "pid" in ev

        # One X slice per launch in each attached timeline.
        by_pid_name = {
            ev["pid"]: ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M"
        }
        for label, timeline in tracer.timelines.items():
            pid = next(p for p, n in by_pid_name.items() if n == label)
            slices = [
                e for e in events if e["pid"] == pid and e["ph"] == "X"
            ]
            assert len(slices) == timeline.num_launches

        # Counter tracks exist and their timestamps are monotone.
        counters = {}
        for ev in events:
            if ev["ph"] == "C":
                counters.setdefault((ev["pid"], ev["name"]), []).append(ev["ts"])
        names = {name for _, name in counters}
        assert "l2_hit_rate" in names
        assert "occupancy" in names
        for ts_list in counters.values():
            assert ts_list == sorted(ts_list)

    def test_scheduler_decisions_exported(self):
        tracer = self._traced_run()
        trace = build_chrome_trace(tracer)
        decisions = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "sched.merge"
        ]
        assert decisions, "no merge-decision instants in trace"
        for d in decisions:
            assert d["args"]["decision"] in ("adopted", "rejected", "invalid")
            assert d["pid"] == 1  # wall-clock scheduler process

    def test_timeline_trace_events_standalone(self):
        tl = Timeline(launch_gap_us=2.0)
        tl.add_launch("k0", 5.0, meta={"l2_hit_rate": 0.25, "occupancy": 0.5})
        tl.add_launch("k1", 3.0)
        events = timeline_trace_events(tl, pid=42)
        slices = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in slices] == ["k0", "k1"]
        assert slices[1]["ts"] == pytest.approx(7.0)  # 5.0 busy + 2.0 gap
        assert all(e["pid"] == 42 for e in events)
        # Only the launch with metadata feeds counter tracks.
        assert len([e for e in events if e["ph"] == "C"]) == 2

    def test_build_accepts_explicit_timelines_without_tracer(self):
        tl = Timeline()
        tl.add_launch("k", 1.0)
        trace = build_chrome_trace(timelines={"solo": tl})
        phs = [e["ph"] for e in trace["traceEvents"]]
        assert phs == ["M", "X"]

    def test_null_tracer_exports_empty(self):
        trace = build_chrome_trace(NULL_TRACER)
        assert trace["traceEvents"] == []

    def test_empty_timeline_is_skipped(self, tmp_path):
        # Regression: an attached-but-never-launched timeline used to
        # emit a dangling process_name metadata event with no slices.
        tl = Timeline()
        tl.add_launch("k", 1.0)
        trace = build_chrome_trace(timelines={"a_empty": Timeline(), "solo": tl})
        names = [e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"]
        assert names == ["solo"]
        phs = [e["ph"] for e in trace["traceEvents"]]
        assert phs == ["M", "X"]

        path = tmp_path / "empty.json"
        write_chrome_trace(str(path), timelines={"only_empty": Timeline()})
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_numpy_meta_round_trips(self, tmp_path):
        # Regression: fast-backend launch metadata carries numpy
        # scalars (np.float64 hit rates, np.int64 counts, np.bool_
        # flags), which ``json.dump`` rejects without sanitizing.
        import numpy as np

        tl = Timeline()
        tl.add_launch(
            "k",
            np.float64(2.5),
            meta={
                "l2_hit_rate": np.float64(0.5),
                "hits": np.int64(7),
                "warmed": np.bool_(True),
            },
        )
        path = tmp_path / "numpy.json"
        write_chrome_trace(str(path), timelines={"fast": tl})
        trace = json.loads(path.read_text())
        (launch,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert launch["dur"] == 2.5
        assert launch["args"] == {"l2_hit_rate": 0.5, "hits": 7, "warmed": True}

    def test_fast_backend_run_exports(self, tmp_path):
        tracer = Tracer()
        app = build_pipeline(size=128)
        ktiler = KTiler(
            app.graph,
            config=KTilerConfig(launch_overhead_us=2.0),
            backend="fast",
            tracer=tracer,
        )
        compare_default_vs_ktiler(ktiler, [NOMINAL])
        path = tmp_path / "fast.json"
        write_chrome_trace(str(path), tracer)
        trace = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])


class TestMetricDumps:
    def _populated(self):
        reg = CounterRegistry()
        reg.inc("sim.cache.hits", 10, kernel="jacobi")
        reg.inc("sim.cache.hits", 4, kernel="warp")
        reg.set_gauge("run.l2_hit_rate", 0.5, schedule="default")
        return reg

    def test_prometheus_format(self):
        text = metrics_to_prometheus(self._populated())
        assert "# TYPE sim_cache_hits counter" in text
        assert 'sim_cache_hits{kernel="jacobi"} 10' in text
        assert "# TYPE run_l2_hit_rate gauge" in text
        assert 'run_l2_hit_rate{schedule="default"} 0.5' in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        reg = CounterRegistry()
        reg.set_gauge("g", 1.0, label='quo"te\\slash')
        text = metrics_to_prometheus(reg)
        assert 'label="quo\\"te\\\\slash"' in text

    def test_prometheus_name_sanitization(self):
        reg = CounterRegistry()
        reg.inc("2nd.metric-name")
        text = metrics_to_prometheus(reg)
        assert "_2nd_metric_name" in text

    def test_json_dump_includes_totals(self):
        data = metrics_to_json(self._populated())
        assert data["sim.cache.hits"]["total"] == 14
        assert data["sim.cache.hits"]["kind"] == "counter"

    def test_write_metrics_both_formats(self, tmp_path):
        reg = self._populated()
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        write_metrics(reg, prom_path=str(prom), json_path=str(js))
        assert "# TYPE" in prom.read_text()
        assert json.loads(js.read_text())["sim.cache.hits"]["total"] == 14

    def test_traced_run_emits_ten_plus_families(self, tmp_path):
        """The acceptance bar: a real traced run yields >= 10 metric names."""
        tracer = Tracer()
        app = build_pipeline(size=128)
        ktiler = KTiler(
            app.graph,
            config=KTilerConfig(launch_overhead_us=2.0),
            tracer=tracer,
        )
        compare_default_vs_ktiler(ktiler, [NOMINAL])
        names = tracer.metrics.names()
        assert len(names) >= 10, names
        text = metrics_to_prometheus(tracer.metrics)
        assert text.count("# TYPE") == len(names)
        assert text.count("# HELP") == len(names)


GOLDEN_PROM = os.path.join(
    os.path.dirname(__file__), "golden", "metrics_reference.prom"
)


def _golden_prom_registry() -> CounterRegistry:
    """A fixed registry exercising every exposition feature.

    Counters and gauges, labeled and bare samples, multiple label keys
    (inserted out of order to prove sorting), a known family, every
    dynamic-prefix family, an unknown family for the fallback help
    line, and a labeled histogram family (cumulative le buckets,
    +Inf, _sum and _count lines).
    """
    reg = CounterRegistry()
    reg.inc("sim.launch.count", 3)
    reg.inc("cache.hits", 10, kernel="jacobi", schedule="default")
    reg.inc("cache.hits", 4, schedule="tiled", kernel="jacobi")
    reg.inc("store.hits", 2, kind="profile")
    reg.inc("audit.miss.cold", 7, schedule="default", kernel="warp")
    reg.set_gauge("run.l2_hit_rate", 0.875, schedule="tiled")
    reg.set_gauge("l2_buffers.default", 12.0, buffer="img0")
    reg.set_gauge("custom.family", 1.5)
    reg.inc("planner.footprint_unions", 44)
    reg.inc("planner.merge_probes", 55)
    reg.inc("decisions.recorded", 25)
    reg.inc("decisions.adopted", 2)
    reg.inc("decisions.rejected", 1)
    reg.inc("decisions.invalid", 0)
    reg.inc("decisions.skipped", 0)
    reg.inc("decisions.excluded", 1)
    reg.inc("decisions.tile_rounds", 22)
    for value in (0.00005, 0.0004, 0.0004, 0.003, 1000.0):
        reg.observe("serve.latency", value, outcome="ok", endpoint="plan")
    reg.observe("serve.latency", 0.0002, endpoint="plan", outcome="memo_hit")
    return reg


class TestPrometheusGolden:
    """Scrape-format stability: the exposition is pinned byte for byte.

    Family order, # HELP/# TYPE header order, and label ordering are
    part of the obs contract — a diff here is an intentional format
    change and must ship with a regenerated fixture (see TESTING.md).
    """

    def test_exposition_matches_golden(self):
        with open(GOLDEN_PROM, "r", encoding="utf-8") as fh:
            expected = fh.read()
        assert metrics_to_prometheus(_golden_prom_registry()) == expected

    def test_every_family_has_help_then_type(self):
        text = metrics_to_prometheus(_golden_prom_registry())
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# HELP"):
                family = line.split()[2]
                assert lines[i + 1].startswith(f"# TYPE {family} "), line

    def test_label_order_is_input_independent(self):
        a = CounterRegistry()
        a.inc("cache.hits", 1, kernel="k", schedule="s")
        b = CounterRegistry()
        b.inc("cache.hits", 1, schedule="s", kernel="k")
        assert metrics_to_prometheus(a) == metrics_to_prometheus(b)


def regenerate_golden_prom() -> None:
    with open(GOLDEN_PROM, "w", encoding="utf-8") as fh:
        fh.write(metrics_to_prometheus(_golden_prom_registry()))
    print(f"wrote {GOLDEN_PROM}")


class TestInstrumentedSimulator:
    def test_launch_emits_sim_span_and_metrics(self):
        tracer = Tracer()
        app = build_jacobi_pingpong(iters=1, size=64)
        sim = GpuSimulator(tracer=tracer)
        for node in app.graph:
            sim.launch(node.kernel)
        assert len(tracer.sim_events) == len(sim.launches)
        # Spans tile simulated time: each starts at the prior cursor.
        cursor = 0.0
        for ev, result in zip(tracer.sim_events, sim.launches):
            assert ev["ts"] == pytest.approx(cursor)
            assert ev["dur"] == pytest.approx(result.time_us)
            cursor += result.time_us
        m = tracer.metrics
        assert m.total("sim.launch.count") == len(sim.launches)
        assert m.total("sim.cache.hits") + m.total("sim.cache.misses") > 0

    def test_cache_eviction_attribution(self):
        """Per-launch cache deltas must sum to the global stats."""
        tracer = Tracer()
        app = build_jacobi_pingpong(iters=2, size=128)
        sim = GpuSimulator(tracer=tracer)
        for node in app.graph:
            sim.launch(node.kernel)
        m = tracer.metrics
        assert m.total("sim.cache.hits") == sim.l2.stats.hits
        assert m.total("sim.cache.misses") == sim.l2.stats.misses
        assert m.total("sim.cache.evictions") == sim.l2.stats.evictions

    def test_default_simulator_untraced(self):
        sim = GpuSimulator()
        assert sim.tracer is NULL_TRACER


class TestEmptyComparisonReport:
    def test_mean_gains_zero_on_empty(self):
        report = ComparisonReport(rows=[])
        assert report.mean_gain_with_ig == 0.0
        assert report.mean_gain_without_ig == 0.0
        # format_table must not raise either.
        assert "average" in report.format_table()


class TestNullTracerOverhead:
    def test_replay_within_noise_of_untraced_loop(self):
        """The NULL_TRACER default must not slow the cache replay.

        Compares the instrumented ``tally_launch`` against a local copy
        of the pre-instrumentation replay loop on the fig2 workload
        (Jacobi at a modest size).  The acceptance budget is 5%; the
        assertion allows 1.25x because single-run timer noise on shared
        CI machines dwarfs the budget, while a real always-on
        instrumentation bug (argument marshalling per block) shows up
        as 2x or worse.
        """
        spec = GpuSpec()
        app = build_jacobi_pingpong(iters=1, size=256)
        kernel = app.graph.node_by_name("JI.0").kernel

        def untraced_once():
            sim = GpuSimulator(spec)
            cache = sim.l2
            nsms = spec.num_sms
            line_shift = spec.line_shift
            per_sm_issue = [0.0] * nsms
            per_sm_hits = [0] * nsms
            per_sm_misses = [0] * nsms
            for i in range(kernel.num_blocks):
                sm = i % nsms
                stream = kernel.block_line_stream(i, line_shift)
                hits, misses = cache.access_stream(stream)
                bx, by = kernel.block_coords(i)
                per_sm_issue[sm] += (
                    kernel.block_instrs(bx, by) / spec.schedulers_per_sm
                )
                per_sm_hits[sm] += hits
                per_sm_misses[sm] += misses

        def instrumented_once():
            sim = GpuSimulator(spec)
            sim.tally_launch(kernel)

        def best_of(fn, n=5):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        # Warm both paths once, then interleave the timed runs.
        untraced_once()
        instrumented_once()
        baseline = best_of(untraced_once)
        instrumented = best_of(instrumented_once)
        assert instrumented <= baseline * 1.25 + 1e-4, (
            f"instrumented replay {instrumented * 1e3:.2f}ms vs "
            f"untraced {baseline * 1e3:.2f}ms"
        )


if __name__ == "__main__":
    regenerate_golden_prom()
