"""Property-based end-to-end tests: ANY dependency-respecting tiling of an
application computes exactly what the default schedule computes.

This is the load-bearing claim behind KTILER's "function-oblivious"
optimization: correctness depends only on the block dependency graph,
never on what the scheduler chose.  We generate random block-level
schedules straight from the dependency graph (randomized topological
order with random sub-kernel granularity) and check both the validator
and functional equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import build_block_graph, run_instrumented
from repro.apps import build_diamond, build_jacobi_pingpong, build_scale_chain
from repro.core.schedule import Schedule
from repro.core.subkernel import SubKernel
from repro.runtime import (
    make_arrays,
    run_default_functional,
    run_functional,
    compare_runs,
)


def random_schedule(graph, block_graph, rng: np.random.Generator) -> Schedule:
    """A random dependency-respecting block-level schedule."""
    remaining = {
        (n.node_id, bid) for n in graph for bid in n.kernel.all_block_ids()
    }
    done = set()
    subkernels = []
    while remaining:
        ready_by_node = {}
        for key in remaining:
            if all(p in done for p in block_graph.all_predecessors(key)):
                ready_by_node.setdefault(key[0], []).append(key[1])
        assert ready_by_node, "deadlock: dependency graph must be acyclic"
        node_id = rng.choice(sorted(ready_by_node))
        blocks = sorted(ready_by_node[node_id])
        take = int(rng.integers(1, len(blocks) + 1))
        chosen = tuple(sorted(rng.choice(blocks, size=take, replace=False)))
        subkernels.append(SubKernel(int(node_id), tuple(int(b) for b in chosen)))
        for bid in chosen:
            key = (int(node_id), int(bid))
            remaining.discard(key)
            done.add(key)
    return Schedule(subkernels=subkernels, name="random")


APPS = {
    "chain": lambda: build_scale_chain(length=3, size=64),
    "diamond": lambda: build_diamond(size=64),
    "jacobi": lambda: build_jacobi_pingpong(iters=3, size=64),
}

_cache = {}


def app_setup(name):
    if name not in _cache:
        app = APPS[name]()
        run = run_instrumented(app.graph)
        bdg = build_block_graph(run.trace)
        reference = run_default_functional(app.graph, app.host_inputs())
        _cache[name] = (app, bdg, reference)
    return _cache[name]


@given(name=st.sampled_from(sorted(APPS)), seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_random_valid_schedule_passes_validator(name, seed):
    app, bdg, _ = app_setup(name)
    schedule = random_schedule(app.graph, bdg, np.random.default_rng(seed))
    schedule.validate(app.graph, bdg)


@given(name=st.sampled_from(sorted(APPS)), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_valid_schedule_is_functionally_equivalent(name, seed):
    app, bdg, reference = app_setup(name)
    schedule = random_schedule(app.graph, bdg, np.random.default_rng(seed))
    arrays = run_functional(
        schedule, app.graph, make_arrays(app.graph, app.host_inputs())
    )
    mismatched = compare_runs(reference, arrays)
    assert not mismatched, f"{name}: buffers differ under {schedule.summary()}"


@given(name=st.sampled_from(sorted(APPS)), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_schedule_partitions_blocks(name, seed):
    app, bdg, _ = app_setup(name)
    schedule = random_schedule(app.graph, bdg, np.random.default_rng(seed))
    from repro.core.subkernel import check_partition

    check_partition(
        list(schedule), {n.node_id: n.num_blocks for n in app.graph}
    )


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_raw_only_schedules_can_break_pingpong(seed):
    """Dropping anti deps admits schedules; the full validator rejects
    at least some of them (WAR hazards on the ping-pong buffers).

    This is the reason the reproduction tracks anti dependencies even
    though the paper's dependency definition is RAW-only.
    """
    app = build_jacobi_pingpong(iters=3, size=64)
    run = run_instrumented(app.graph)
    full = build_block_graph(run.trace, include_anti=True)
    raw_only = build_block_graph(run.trace, include_anti=False)
    schedule = random_schedule(app.graph, raw_only, np.random.default_rng(seed))
    # Always valid against the graph it was built from...
    schedule.validate(app.graph, raw_only, include_anti=False)
    # ...and when it also passes the full validator, it must be
    # functionally correct.
    from repro.errors import ScheduleError

    try:
        schedule.validate(app.graph, full)
    except ScheduleError:
        return  # a genuine WAR hazard was admitted and caught
    reference = run_default_functional(app.graph, app.host_inputs())
    arrays = run_functional(
        schedule, app.graph, make_arrays(app.graph, app.host_inputs())
    )
    assert not compare_runs(reference, arrays)
