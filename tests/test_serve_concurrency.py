"""Concurrency and property tests for the serve daemon.

The claims under test:

* **single-flight** — N concurrent identical requests trigger exactly
  one planning job (``serve.plans`` pins it); everyone else coalesces
  onto the in-flight future or hits the memo, and every response
  carries the *same* plan digest, schedule, and work-counter block
  (the work counters prove which planning job produced a response:
  one job, one block, shared verbatim);
* **no cross-talk** — under a mixed workload each response echoes its
  own request (the frequency it asked for) and carries the digest of
  its own fingerprint, never a neighbour's;
* **property** — response plan digests are a function of request
  fingerprints: equal fingerprints ⇒ equal digests, and fingerprints
  ignore non-semantic knobs (sim backend) by construction.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.client import ServeClient
from repro.serve.server import start_server
from repro.serve.service import PlanService


def hammer(url: str, bodies, repeats: int):
    """Fire len(bodies)*repeats requests from a barrier, in parallel."""
    responses = [None] * (len(bodies) * repeats)
    errors = []
    barrier = threading.Barrier(len(responses))

    def worker(index: int, body: dict) -> None:
        client = ServeClient(url)
        barrier.wait()
        try:
            responses[index] = client.plan(body)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(r * len(bodies) + i, body))
        for r in range(repeats)
        for i, body in enumerate(bodies)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]
    return responses


class TestSingleFlight:
    def test_identical_requests_plan_exactly_once(self):
        service = PlanService()
        with start_server(service) as handle:
            body = {"app": {"preset": "diamond"}}
            responses = hammer(handle.url, [body], repeats=8)
        metrics = service.tracer.metrics
        assert metrics.total("serve.plans") == 1
        served = sorted(r["served"] for r in responses)
        assert served.count("planned") == 1
        assert (
            metrics.total("serve.coalesced") + metrics.total("serve.memo_hits")
            == 7
        )
        digests = {r["plan_digest"] for r in responses}
        assert len(digests) == 1
        # One planning job ⇒ one work-counter block, shared verbatim.
        works = [r["stats"]["work"] for r in responses]
        assert all(work == works[0] for work in works)

    def test_distinct_fingerprints_each_plan_once(self):
        service = PlanService()
        freqs = (1324.0, 924.0, 549.0)
        bodies = [
            {
                "app": {"preset": "diamond"},
                "freq": {"gpu_mhz": gpu_mhz, "mem_mhz": 5010.0},
            }
            for gpu_mhz in freqs
        ]
        with start_server(service) as handle:
            responses = hammer(handle.url, bodies, repeats=4)
        metrics = service.tracer.metrics
        assert metrics.total("serve.plans") == len(bodies)
        assert len({r["fingerprint"] for r in responses}) == len(bodies)

    def test_no_cross_talk_between_responses(self):
        """Each response echoes its own request and its own plan."""
        service = PlanService()
        freqs = (1324.0, 797.0)
        bodies = [
            {
                "app": {"preset": "diamond"},
                "freq": {"gpu_mhz": gpu_mhz, "mem_mhz": 5010.0},
            }
            for gpu_mhz in freqs
        ]
        with start_server(service) as handle:
            responses = hammer(handle.url, bodies, repeats=6)
        by_fingerprint = {}
        for i, response in enumerate(responses):
            asked_mhz = freqs[i % len(freqs)]
            assert response["request"]["freq"]["gpu_mhz"] == asked_mhz
            previous = by_fingerprint.setdefault(
                response["fingerprint"],
                (response["plan_digest"], response["schedule"]),
            )
            assert previous == (response["plan_digest"], response["schedule"])
        assert len(by_fingerprint) == len(freqs)

    def test_memoized_and_planned_responses_are_identical(self):
        """The shared-result copy never leaks per-request fields."""
        service = PlanService()
        with start_server(service) as handle:
            client = ServeClient(handle.url)
            body = {"app": {"preset": "diamond"}}
            first = client.plan(body)
            second = client.plan(body)
        volatile = ("served", "elapsed_ms", "request_id")
        assert {k: v for k, v in first.items() if k not in volatile} == {
            k: v for k, v in second.items() if k not in volatile
        }


@pytest.fixture(scope="module")
def module_daemon():
    service = PlanService()
    handle = start_server(service)
    yield handle
    handle.close()


class TestDigestProperty:
    """Plan digests are a function of request fingerprints alone."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        shape=st.sampled_from(["chain", "fan"]),
        kernels=st.integers(min_value=3, max_value=5),
        gpu_mhz=st.sampled_from([1324.0, 666.0]),
        sim_backend=st.sampled_from(["reference", "fast"]),
    )
    def test_digest_depends_only_on_fingerprint(
        self, module_daemon, shape, kernels, gpu_mhz, sim_backend
    ):
        client = ServeClient(module_daemon.url)
        response = client.plan(
            {
                "app": {"preset": shape, "kernels": kernels, "size": 8},
                "freq": {"gpu_mhz": gpu_mhz, "mem_mhz": 5010.0},
                "sim_backend": sim_backend,
            }
        )
        semantics = (shape, kernels, gpu_mhz)  # sim_backend excluded
        seen_fp = self._fingerprints.setdefault(
            semantics, response["fingerprint"]
        )
        # Same semantic request ⇒ same fingerprint, whatever the backend.
        assert response["fingerprint"] == seen_fp
        seen_digest = self._digests.setdefault(
            response["fingerprint"], response["plan_digest"]
        )
        assert response["plan_digest"] == seen_digest

    _fingerprints: dict = {}
    _digests: dict = {}
