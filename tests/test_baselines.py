"""Tests for the baseline schedulers (merge-all and the exhaustive oracle)."""

import pytest

from repro.apps import build_jacobi_pingpong, build_pipeline, build_scale_chain
from repro.core import KTiler, KTilerConfig
from repro.core.schedule import Schedule
from repro.errors import TilingError
from repro.gpusim import NOMINAL, GpuSpec
from repro.runtime import measure_at, schedules_equivalent, tally_schedule


@pytest.fixture(scope="module")
def chain_setup():
    """A 4-kernel scale chain at 512x512 against a 512 KB L2."""
    app = build_scale_chain(length=4, size=512)
    spec = GpuSpec(l2_bytes=512 * 1024, launch_gap_us=1.0)
    ktiler = KTiler(app.graph, spec=spec,
                    config=KTilerConfig(launch_overhead_us=1.0))
    return app, ktiler


class TestMergeAll:
    def test_produces_valid_schedule(self, chain_setup):
        app, ktiler = chain_setup
        result = ktiler.plan_merge_all(NOMINAL)
        result.schedule.validate(app.graph, ktiler.block_graph)

    def test_functionally_equivalent(self, chain_setup):
        app, ktiler = chain_setup
        result = ktiler.plan_merge_all(NOMINAL)
        ok, mismatched = schedules_equivalent(
            app.graph, result.schedule, app.host_inputs()
        )
        assert ok, mismatched

    def test_merges_at_least_as_much_as_ktiler(self, chain_setup):
        _, ktiler = chain_setup
        greedy = ktiler.plan_merge_all(NOMINAL)
        heuristic = ktiler.plan(NOMINAL)
        assert greedy.stats.adopted_merges >= heuristic.stats.adopted_merges

    def test_cost_model_matters_under_large_gap(self):
        """With an expensive gap, merge-all over-splits; KTILER does not."""
        app = build_jacobi_pingpong(iters=4, size=256)
        spec = GpuSpec(l2_bytes=512 * 1024)
        gap = 20.0
        ktiler = KTiler(app.graph, spec=spec,
                        config=KTilerConfig(launch_overhead_us=gap))
        greedy = ktiler.plan_merge_all(NOMINAL)
        heuristic = ktiler.plan(NOMINAL)
        graph = app.graph
        default_run = measure_at(
            tally_schedule(Schedule.default(graph), graph, spec),
            spec, NOMINAL, gap,
        )
        greedy_run = measure_at(
            tally_schedule(greedy.schedule, graph, spec), spec, NOMINAL, gap
        )
        heuristic_run = measure_at(
            tally_schedule(heuristic.schedule, graph, spec), spec, NOMINAL, gap
        )
        # KTILER prices the gap in and never regresses...
        assert heuristic_run.total_us <= default_run.total_us * 1.001
        # ...while the cost-blind greedy pays for every extra launch.
        assert greedy_run.total_us > heuristic_run.total_us


class TestExhaustive:
    def test_oracle_not_beaten_by_heuristic(self, chain_setup):
        _, ktiler = chain_setup
        oracle = ktiler.plan_exhaustive(NOMINAL)
        heuristic = ktiler.plan(NOMINAL)
        assert oracle.estimated_cost_us <= heuristic.estimated_cost_us + 1e-6

    def test_heuristic_is_near_optimal_on_chain(self, chain_setup):
        """Algorithm 1 lands within 10% of the oracle on the chain."""
        _, ktiler = chain_setup
        oracle = ktiler.plan_exhaustive(NOMINAL)
        heuristic = ktiler.plan(NOMINAL)
        assert heuristic.estimated_cost_us <= 1.10 * oracle.estimated_cost_us

    def test_oracle_schedule_valid_and_equivalent(self, chain_setup):
        app, ktiler = chain_setup
        oracle = ktiler.plan_exhaustive(NOMINAL)
        ok, mismatched = schedules_equivalent(
            app.graph, oracle.schedule, app.host_inputs()
        )
        assert ok, mismatched

    def test_too_many_edges_rejected(self):
        app = build_jacobi_pingpong(iters=10, size=64)
        ktiler = KTiler(app.graph, spec=GpuSpec(l2_bytes=64 * 1024))
        with pytest.raises(TilingError):
            ktiler.plan_exhaustive(NOMINAL, max_edges=3)

    def test_oracle_on_diamond(self):
        from repro.apps import build_diamond

        app = build_diamond(size=512)
        spec = GpuSpec(l2_bytes=256 * 1024, launch_gap_us=1.0)
        ktiler = KTiler(app.graph, spec=spec,
                        config=KTilerConfig(launch_overhead_us=1.0))
        oracle = ktiler.plan_exhaustive(NOMINAL)
        heuristic = ktiler.plan(NOMINAL)
        assert oracle.estimated_cost_us <= heuristic.estimated_cost_us + 1e-6
        oracle.schedule.validate(app.graph, ktiler.block_graph)
