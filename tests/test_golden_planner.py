"""Golden planner fixture: a ~1k-kernel grid probe graph, pinned.

``tests/golden/planner_grid_probe.json`` pins the full planner output
for a 1024-kernel grid probe graph (``build_probe_graph(shape="grid",
kernels=1024, size=32, seed=0)``): the schedule document, the adopted
partition, the scheduler telemetry, and the deterministic work
counters.  Both planner backends and both worker counts {1, 2} must
reproduce the shared summary verbatim — the planner-backend contract at
a scale where the reference backend performs ~10^6 merge probes, so any
divergence in a single ``can_merge`` verdict shifts the counters or the
schedule immediately.

The *validity-family* counters (``merge_probes`` / ``reach_repairs``)
are planner-backend-local by design (see
:data:`repro.core.work.VALIDITY_COUNTERS`), so the fixture pins them
per backend instead of in the shared summary.

Regenerate with ``PYTHONPATH=src python tests/test_golden_planner.py``
after an intentional planner change, and review the diff.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.work import VALIDITY_COUNTERS

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "planner_grid_probe.json"

SHAPE = "grid"
KERNELS = 1024
IMAGE_SIZE = 32
SEED = 0
COST_ROUND = 6


def build_plan(planner_backend: str, workers: int = 1):
    from repro.apps.synthetic import build_probe_graph
    from repro.core import KTiler, KTilerConfig

    app = build_probe_graph(
        shape=SHAPE, kernels=KERNELS, size=IMAGE_SIZE, seed=SEED
    )
    ktiler = KTiler(
        app.graph,
        config=KTilerConfig(launch_overhead_us=2.0),
        workers=workers,
        planner_backend=planner_backend,
    )
    return app.graph, ktiler.plan()


def split_summary(graph, plan) -> tuple:
    """(shared summary, per-backend validity counters).

    The shared part must be identical for every planner backend ×
    worker count; the validity counters are pinned per backend.
    """
    from repro.core.serialize import schedule_to_dict

    stats = asdict(plan.stats)
    validity = {c: stats["work"].pop(c) for c in VALIDITY_COUNTERS}
    summary = {
        "schedule": schedule_to_dict(plan.schedule, graph),
        "partition": sorted(
            sorted(plan.partition.members(c))
            for c in plan.partition.cluster_ids()
        ),
        "stats": stats,
        "estimated_cost_us": round(plan.estimated_cost_us, COST_ROUND),
    }
    return summary, validity


def load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden fixture {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_planner.py`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("planner_backend", ["reference", "fast"])
def test_planner_backend_reproduces_golden(planner_backend, workers):
    golden = load_golden()
    graph, plan = build_plan(planner_backend, workers=workers)
    summary, validity = split_summary(graph, plan)
    assert summary == golden["summary"], (
        f"the grid-probe plan under planner_backend={planner_backend} "
        f"workers={workers} diverged from the golden fixture; if the "
        "change is intentional, regenerate it and review the diff"
    )
    assert validity == golden["validity"][planner_backend], (
        f"validity-family counters moved for planner_backend="
        f"{planner_backend}; this is an algorithm change — regenerate "
        "the fixture if intentional"
    )


def test_fixture_metadata_matches_this_test():
    golden = load_golden()
    assert golden["probe"] == {
        "shape": SHAPE,
        "kernels": KERNELS,
        "image_size": IMAGE_SIZE,
        "seed": SEED,
    }
    assert set(golden["validity"]) == {"reference", "fast"}
    for counters in golden["validity"].values():
        assert set(counters) == set(VALIDITY_COUNTERS)


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    graph, plan = build_plan("reference")
    summary, ref_validity = split_summary(graph, plan)
    graph_fast, plan_fast = build_plan("fast")
    summary_fast, fast_validity = split_summary(graph_fast, plan_fast)
    if summary != summary_fast:
        raise SystemExit(
            "planner backends disagree on the shared summary; refusing "
            "to write a golden fixture from divergent backends"
        )
    payload = {
        "probe": {
            "shape": SHAPE,
            "kernels": KERNELS,
            "image_size": IMAGE_SIZE,
            "seed": SEED,
        },
        "summary": summary,
        "validity": {"reference": ref_validity, "fast": fast_validity},
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    regenerate()
