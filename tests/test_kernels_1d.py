"""Functional tests for the 1D kernels: reduce, scan, sort, finance, copies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.buffers import BufferAllocator
from repro.kernels import (
    BlackScholesKernel,
    DeviceCopyKernel,
    DeviceToHostKernel,
    HostToDeviceKernel,
    MatMulKernel,
    TransposeKernel,
    build_bitonic_network,
    build_reduction_chain,
    build_scan_chain,
)

LINE_SHIFT = 7


@pytest.fixture
def alloc():
    return BufferAllocator()


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def run_chain(kernels, arrays):
    for kernel in kernels:
        kernel.run_blocks(arrays, kernel.all_block_ids())


class TestReduction:
    def test_full_reduction(self, alloc, rng):
        n = 10_000
        src = alloc.new("src", n)
        kernels, result = build_reduction_chain(alloc, src)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random(n, dtype=np.float32)
        run_chain(kernels, arrays)
        expected = arrays["src"].astype(np.float64).sum()
        assert arrays[result.name][0] == pytest.approx(expected, rel=1e-5)

    def test_chain_depth(self, alloc):
        src = alloc.new("src", 2048 * 2048)
        kernels, result = build_reduction_chain(alloc, src)
        assert len(kernels) == 2  # 4M -> 2048 -> 1
        assert result.num_elements == 1

    def test_output_size_validation(self, alloc):
        from repro.kernels.reduce import ReductionKernel

        src = alloc.new("src", 10_000)
        out = alloc.new("out", 1)
        with pytest.raises(ConfigurationError):
            ReductionKernel(src, out)


class TestScan:
    @pytest.mark.parametrize("n", [1024, 4096, 3000])
    def test_inclusive_scan(self, n, rng):
        alloc = BufferAllocator()
        src = alloc.new("src", n)
        kernels, result = build_scan_chain(alloc, src)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.integers(0, 4, n).astype(np.float32)
        run_chain(kernels, arrays)
        expected = np.cumsum(arrays["src"])
        np.testing.assert_allclose(arrays[result.name], expected, rtol=1e-5)

    def test_step_count_log2(self, alloc):
        src = alloc.new("src", 1 << 14)
        kernels, _ = build_scan_chain(alloc, src)
        assert len(kernels) == 14

    def test_distance_validation(self, alloc):
        from repro.kernels.scan import ScanStepKernel

        src = alloc.new("a", 64)
        out = alloc.new("b", 64)
        with pytest.raises(ConfigurationError):
            ScanStepKernel(src, out, 0)


class TestBitonicSort:
    @pytest.mark.parametrize("n", [1024, 8192])
    def test_sorts(self, n, rng):
        alloc = BufferAllocator()
        src = alloc.new("src", n)
        kernels, result = build_bitonic_network(alloc, src)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random(n, dtype=np.float32)
        run_chain(kernels, arrays)
        np.testing.assert_array_equal(
            arrays[result.name], np.sort(arrays["src"])
        )

    def test_network_size(self, alloc):
        src = alloc.new("src", 1 << 10)
        kernels, _ = build_bitonic_network(alloc, src)
        assert len(kernels) == 10 * 11 // 2  # sum over stages of log(stage)

    def test_power_of_two_required(self, alloc):
        from repro.kernels.sort import BitonicStepKernel

        src = alloc.new("a", 100)
        out = alloc.new("b", 100)
        with pytest.raises(ConfigurationError):
            BitonicStepKernel(src, out, 2, 1)

    def test_cross_block_partner_reads(self, alloc):
        from repro.kernels.sort import SORT_CHUNK, BitonicStepKernel

        src = alloc.new("a", 4 * SORT_CHUNK)
        out = alloc.new("b", 4 * SORT_CHUNK)
        k = BitonicStepKernel(src, out, 2 * SORT_CHUNK, SORT_CHUNK)
        reads, _ = k.block_line_sets(0, LINE_SHIFT)
        own = k.block_line_sets(1, LINE_SHIFT)[0]
        # Block 0 reads its own chunk and block 1's chunk (the partner).
        assert reads > set()
        assert len(reads) == 2 * SORT_CHUNK * 4 // 128


class TestBlackScholes:
    def test_put_call_parity(self, alloc, rng):
        n = 4096
        names = ["spot", "strike", "expiry", "call", "put"]
        bufs = [alloc.new(name, n) for name in names]
        k = BlackScholesKernel(*bufs, riskfree=0.02, volatility=0.3)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["spot"][:] = 50 + 50 * rng.random(n, dtype=np.float32)
        arrays["strike"][:] = 50 + 50 * rng.random(n, dtype=np.float32)
        arrays["expiry"][:] = 0.25 + rng.random(n, dtype=np.float32)
        k.run_blocks(arrays, k.all_block_ids())
        s, x, t = arrays["spot"], arrays["strike"], arrays["expiry"]
        parity = arrays["call"] - arrays["put"]
        expected = s - x * np.exp(-0.02 * t)
        np.testing.assert_allclose(parity, expected, atol=1e-3)

    def test_deep_in_the_money_call(self, alloc):
        n = 1024
        names = ["spot", "strike", "expiry", "call", "put"]
        bufs = [alloc.new(name, n) for name in names]
        k = BlackScholesKernel(*bufs)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["spot"][:] = 1000.0
        arrays["strike"][:] = 1.0
        arrays["expiry"][:] = 1.0
        k.run_blocks(arrays, k.all_block_ids())
        assert (arrays["call"] > 990).all()
        assert (np.abs(arrays["put"]) < 1e-3).all()

    def test_size_mismatch_rejected(self, alloc):
        a = alloc.new("a", 100)
        b = alloc.new("b", 100)
        c = alloc.new("c", 100)
        d = alloc.new("d", 100)
        e = alloc.new("e", 50)
        with pytest.raises(ConfigurationError):
            BlackScholesKernel(a, b, c, d, e)


class TestLinalg:
    def test_matmul(self, alloc, rng):
        m, k_dim, n = 64, 48, 96
        a = alloc.new("a", m * k_dim, shape=(m, k_dim))
        b = alloc.new("b", k_dim * n, shape=(k_dim, n))
        c = alloc.new("c", m * n, shape=(m, n))
        k = MatMulKernel(a, b, c)
        arrays = {buf.name: buf.make_array() for buf in alloc}
        arrays["a"][:] = rng.random((m, k_dim), dtype=np.float32)
        arrays["b"][:] = rng.random((k_dim, n), dtype=np.float32)
        k.run_blocks(arrays, k.all_block_ids())
        np.testing.assert_allclose(
            arrays["c"], arrays["a"] @ arrays["b"], rtol=1e-4
        )

    def test_matmul_shape_validation(self, alloc):
        a = alloc.new("a", 64 * 32, shape=(64, 32))
        b = alloc.new("b", 64 * 32, shape=(64, 32))
        c = alloc.new("c", 64 * 64, shape=(64, 64))
        with pytest.raises(ConfigurationError):
            MatMulKernel(a, b, c)

    def test_transpose(self, alloc, rng):
        src = alloc.new("src", 64 * 128, shape=(64, 128))
        out = alloc.new("out", 128 * 64, shape=(128, 64))
        k = TransposeKernel(src, out)
        arrays = {buf.name: buf.make_array() for buf in alloc}
        arrays["src"][:] = rng.random((64, 128), dtype=np.float32)
        k.run_blocks(arrays, k.all_block_ids())
        np.testing.assert_array_equal(arrays["out"], arrays["src"].T)

    def test_transpose_reads_are_strided(self, alloc):
        src = alloc.new("src", 128 * 128, shape=(128, 128))
        out = alloc.new("out", 128 * 128, shape=(128, 128))
        k = TransposeKernel(src, out)
        # An output tile of 8 columns reads 32 rows of 8 elements:
        # touches one line per source row (strided, low utilization).
        reads, _ = k.block_line_sets(0, LINE_SHIFT)
        assert len(reads) == 32


class TestCopies:
    def test_host_to_device(self, alloc, rng):
        dst = alloc.new("dst", 10_000)
        k = HostToDeviceKernel(dst)
        payload = rng.random(10_000, dtype=np.float32)
        arrays = {"dst": dst.make_array(), "dst__host": payload}
        k.run_blocks(arrays, k.all_block_ids())
        np.testing.assert_array_equal(arrays["dst"], payload)

    def test_device_to_host(self, alloc, rng):
        src = alloc.new("src", 10_000)
        k = DeviceToHostKernel(src)
        arrays = {"src": src.make_array()}
        arrays["src"][:] = rng.random(10_000, dtype=np.float32)
        k.run_blocks(arrays, k.all_block_ids())
        np.testing.assert_array_equal(arrays["src__host"], arrays["src"])

    def test_device_copy(self, alloc, rng):
        src = alloc.new("src", 5000)
        dst = alloc.new("dst", 5000)
        k = DeviceCopyKernel(src, dst)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random(5000, dtype=np.float32)
        k.run_blocks(arrays, k.all_block_ids())
        np.testing.assert_array_equal(arrays["dst"], arrays["src"])

    def test_copy_size_mismatch(self, alloc):
        src = alloc.new("src", 100)
        dst = alloc.new("dst", 200)
        with pytest.raises(ConfigurationError):
            DeviceCopyKernel(src, dst)

    def test_htd_writes_cover_buffer(self, alloc):
        dst = alloc.new("dst", 10_000)
        k = HostToDeviceKernel(dst)
        written = set()
        for bid in k.all_block_ids():
            written |= k.block_line_sets(bid, LINE_SHIFT)[1]
        assert written == set(dst.lines(LINE_SHIFT))
