"""Unit tests for the GPU architecture model."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.arch import (
    DESKTOP_GPU,
    EMBEDDED_GPU,
    GTX_960M,
    WARP_SIZE,
    GpuSpec,
    spec_with_l2,
)


class TestGpuSpec:
    def test_default_is_gtx_960m(self):
        spec = GpuSpec()
        assert spec.num_sms == 5
        assert spec.total_cores == 640
        assert spec.l2_bytes == 2 * 1024 * 1024
        assert spec.name == GTX_960M.name

    def test_line_geometry(self):
        spec = GpuSpec()
        assert spec.l2_line_bytes == 128
        assert spec.line_shift == 7
        assert 1 << spec.line_shift == spec.l2_line_bytes
        assert spec.l2_num_lines == spec.l2_bytes // 128
        assert spec.l2_num_sets * spec.l2_assoc == spec.l2_num_lines

    def test_rejects_bad_line_size(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(l2_line_bytes=96)

    def test_rejects_indivisible_l2(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(l2_bytes=100_000)

    def test_rejects_nonpositive_sms(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(num_sms=0)

    def test_spec_with_l2(self):
        spec = spec_with_l2(GTX_960M, 512 * 1024)
        assert spec.l2_bytes == 512 * 1024
        assert spec.num_sms == GTX_960M.num_sms


class TestOccupancy:
    def test_blocks_per_sm_256_threads(self):
        # 2048 threads / 256 = 8 blocks; 64 warps / 8 warps = 8 blocks.
        assert GpuSpec().blocks_per_sm(256) == 8

    def test_blocks_per_sm_capped_by_block_limit(self):
        # 32-thread blocks: 2048/32 = 64, but max_blocks_per_sm = 32.
        assert GpuSpec().blocks_per_sm(32) == 32

    def test_blocks_per_sm_large_blocks(self):
        assert GpuSpec().blocks_per_sm(1024) == 2

    def test_rejects_oversized_block(self):
        with pytest.raises(ConfigurationError):
            GpuSpec().blocks_per_sm(2048)

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ConfigurationError):
            GpuSpec().blocks_per_sm(0)

    def test_resident_warps_small_launch(self):
        spec = GpuSpec()
        # One block on the whole device: one resident block on one SM.
        assert spec.resident_warps(256, 1) == 256 // WARP_SIZE

    def test_resident_warps_saturates(self):
        spec = GpuSpec()
        full = spec.resident_warps(256, 10_000)
        assert full == spec.blocks_per_sm(256) * (256 // WARP_SIZE)

    def test_resident_warps_monotone_in_blocks(self):
        spec = GpuSpec()
        values = [spec.resident_warps(256, n) for n in (1, 5, 10, 40, 100)]
        assert values == sorted(values)

    def test_occupancy_fraction(self):
        spec = GpuSpec()
        assert spec.occupancy(256) == pytest.approx(1.0)
        assert 0.0 < spec.occupancy(1024) <= 1.0


class TestPresets:
    def test_presets_are_valid(self):
        for preset in (GTX_960M, EMBEDDED_GPU, DESKTOP_GPU):
            assert preset.l2_num_sets > 0
            assert preset.blocks_per_sm(256) >= 1

    def test_embedded_is_smaller(self):
        assert EMBEDDED_GPU.l2_bytes < GTX_960M.l2_bytes < DESKTOP_GPU.l2_bytes
