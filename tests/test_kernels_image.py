"""Functional and access-pattern tests for the 2D image kernels.

Each kernel's block-wise execution is compared against an independent
whole-array numpy computation, and the traced access pattern is checked
to cover everything the functional body actually touches.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.buffers import BufferAllocator
from repro.kernels import (
    AddKernel,
    ConvolveKernel,
    DerivativesKernel,
    DownscaleKernel,
    GrayscaleKernel,
    JacobiKernel,
    MemsetKernel,
    ScaleKernel,
    UpscaleKernel,
    WarpKernel,
)

SIZE = 64
LINE_SHIFT = 7


@pytest.fixture
def alloc():
    return BufferAllocator()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def run_all(kernel, arrays):
    kernel.run_blocks(arrays, kernel.all_block_ids())


class TestGrayscale:
    def test_matches_weighted_sum(self, alloc, rng):
        rgba = alloc.new_image("rgba", SIZE, 4 * SIZE)
        gray = alloc.new_image("gray", SIZE, SIZE)
        k = GrayscaleKernel(rgba, gray)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["rgba"][:] = rng.random((SIZE, 4 * SIZE), dtype=np.float32)
        run_all(k, arrays)
        px = arrays["rgba"].reshape(SIZE, SIZE, 4)
        expected = 0.299 * px[:, :, 0] + 0.587 * px[:, :, 1] + 0.114 * px[:, :, 2]
        np.testing.assert_allclose(arrays["gray"], expected, atol=1e-5)

    def test_shape_validation(self, alloc):
        src = alloc.new_image("src", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        with pytest.raises(ConfigurationError):
            GrayscaleKernel(src, out)


class TestPointwise:
    def test_add(self, alloc, rng):
        a = alloc.new_image("a", SIZE, SIZE)
        b = alloc.new_image("b", SIZE, SIZE)
        c = alloc.new_image("c", SIZE, SIZE)
        k = AddKernel(a, b, c)
        arrays = {buf.name: buf.make_array() for buf in alloc}
        arrays["a"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        arrays["b"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        run_all(k, arrays)
        np.testing.assert_array_equal(arrays["c"], arrays["a"] + arrays["b"])

    def test_scale(self, alloc, rng):
        a = alloc.new_image("a", SIZE, SIZE)
        b = alloc.new_image("b", SIZE, SIZE)
        k = ScaleKernel(a, b, 2.5)
        arrays = {buf.name: buf.make_array() for buf in alloc}
        arrays["a"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        run_all(k, arrays)
        np.testing.assert_allclose(arrays["b"], 2.5 * arrays["a"], rtol=1e-6)

    def test_memset(self, alloc):
        a = alloc.new_image("a", SIZE, SIZE)
        k = MemsetKernel(a, 7.0)
        arrays = {"a": a.make_array()}
        run_all(k, arrays)
        assert (arrays["a"] == 7.0).all()

    def test_memset_has_no_reads(self, alloc):
        a = alloc.new_image("a", SIZE, SIZE)
        k = MemsetKernel(a, 0.0)
        reads, writes = k.block_line_sets(0, LINE_SHIFT)
        assert not reads and writes


class TestResize:
    def test_downscale_is_2x2_mean(self, alloc, rng):
        src = alloc.new_image("src", SIZE, SIZE)
        out = alloc.new_image("out", SIZE // 2, SIZE // 2)
        k = DownscaleKernel(src, out)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        run_all(k, arrays)
        expected = arrays["src"].reshape(SIZE // 2, 2, SIZE // 2, 2).mean(
            axis=(1, 3), dtype=np.float32
        )
        np.testing.assert_allclose(arrays["out"], expected, atol=1e-6)

    def test_downscale_shape_check(self, alloc):
        src = alloc.new_image("src", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        with pytest.raises(ConfigurationError):
            DownscaleKernel(src, out)

    def test_upscale_nearest_with_value_scale(self, alloc, rng):
        src = alloc.new_image("src", SIZE // 2, SIZE // 2)
        out = alloc.new_image("out", SIZE, SIZE)
        k = UpscaleKernel(src, out, value_scale=2.0)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random((SIZE // 2, SIZE // 2), dtype=np.float32)
        run_all(k, arrays)
        expected = 2.0 * np.repeat(np.repeat(arrays["src"], 2, 0), 2, 1)
        np.testing.assert_allclose(arrays["out"], expected, rtol=1e-6)


class TestWarp:
    def test_zero_flow_is_identity(self, alloc, rng):
        src = alloc.new_image("src", SIZE, SIZE)
        u = alloc.new_image("u", SIZE, SIZE)
        v = alloc.new_image("v", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        k = WarpKernel(src, u, v, out)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        run_all(k, arrays)
        np.testing.assert_allclose(arrays["out"], arrays["src"], atol=1e-6)

    def test_integer_shift(self, alloc, rng):
        src = alloc.new_image("src", SIZE, SIZE)
        u = alloc.new_image("u", SIZE, SIZE)
        v = alloc.new_image("v", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        k = WarpKernel(src, u, v, out, max_displacement=4)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        arrays["u"][:] = 2.0  # sample from x+2
        run_all(k, arrays)
        np.testing.assert_allclose(
            arrays["out"][:, : SIZE - 2], arrays["src"][:, 2:], atol=1e-6
        )

    def test_displacement_clamped_to_contract(self, alloc, rng):
        src = alloc.new_image("src", SIZE, SIZE)
        u = alloc.new_image("u", SIZE, SIZE)
        v = alloc.new_image("v", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        k = WarpKernel(src, u, v, out, max_displacement=2)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        arrays["u"][:] = 100.0  # far beyond the halo: clamps to +2
        run_all(k, arrays)
        np.testing.assert_allclose(
            arrays["out"][:, : SIZE - 2], arrays["src"][:, 2:], atol=1e-6
        )

    def test_marked_input_dependent(self, alloc):
        src = alloc.new_image("src", SIZE, SIZE)
        u = alloc.new_image("u", SIZE, SIZE)
        v = alloc.new_image("v", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        assert WarpKernel(src, u, v, out).input_dependent


class TestDerivatives:
    def test_constant_image_zero_gradient(self, alloc):
        names = ["f0", "wp", "ix", "iy", "it"]
        bufs = {n: alloc.new_image(n, SIZE, SIZE) for n in names}
        k = DerivativesKernel(*[bufs[n] for n in names])
        arrays = {n: bufs[n].make_array() for n in names}
        arrays["f0"][:] = 3.0
        arrays["wp"][:] = 5.0
        run_all(k, arrays)
        assert np.allclose(arrays["ix"], 0.0)
        assert np.allclose(arrays["iy"], 0.0)
        assert np.allclose(arrays["it"], 2.0)

    def test_linear_ramp_gradient(self, alloc):
        names = ["f0", "wp", "ix", "iy", "it"]
        bufs = {n: alloc.new_image(n, SIZE, SIZE) for n in names}
        k = DerivativesKernel(*[bufs[n] for n in names])
        arrays = {n: bufs[n].make_array() for n in names}
        ramp = np.arange(SIZE, dtype=np.float32)[None, :].repeat(SIZE, 0)
        arrays["f0"][:] = ramp
        arrays["wp"][:] = ramp
        run_all(k, arrays)
        # Interior: central difference of a unit ramp is exactly 1.
        assert np.allclose(arrays["ix"][:, 1:-1], 1.0)
        # Borders: clamped one-sided difference halves.
        assert np.allclose(arrays["ix"][:, 0], 0.5)
        assert np.allclose(arrays["ix"][:, -1], 0.5)
        assert np.allclose(arrays["iy"], 0.0)


class TestJacobi:
    def _build(self, alloc):
        names = ["du0", "dv0", "ix", "iy", "it", "du1", "dv1"]
        bufs = {n: alloc.new_image(n, SIZE, SIZE) for n in names}
        k = JacobiKernel(*[bufs[n] for n in names], alpha=1.0)
        return k, {n: bufs[n].make_array() for n in names}

    def test_zero_system_stays_zero(self, alloc):
        k, arrays = self._build(alloc)
        run_all(k, arrays)
        assert not arrays["du1"].any()
        assert not arrays["dv1"].any()

    def test_matches_vectorized_sweep(self, alloc, rng):
        from repro.apps.hsopticalflow import _jacobi_sweep

        k, arrays = self._build(alloc)
        for name in ("du0", "dv0", "ix", "iy", "it"):
            arrays[name][:] = rng.standard_normal((SIZE, SIZE)).astype(np.float32)
        run_all(k, arrays)
        du_ref, dv_ref = _jacobi_sweep(
            arrays["du0"], arrays["dv0"], arrays["ix"], arrays["iy"],
            arrays["it"], 1.0,
        )
        np.testing.assert_allclose(arrays["du1"], du_ref, atol=1e-5)
        np.testing.assert_allclose(arrays["dv1"], dv_ref, atol=1e-5)

    def test_reads_have_one_pixel_halo(self, alloc):
        k, _ = self._build(alloc)
        # An interior block reads du0 rows [tile-1, tile+1).
        bx, by = 1, 2
        row0, row1, col0, col1 = k.tile_bounds(bx, by)
        halo_rows = {
            rng.offset // SIZE
            for rng in k.tile_reads(bx, by)
            if rng.buffer.name == "du0"
        }
        assert min(halo_rows) == row0 - 1
        assert max(halo_rows) == row1

    def test_alpha_validation(self, alloc):
        names = ["a", "b", "c", "d", "e", "f", "g"]
        bufs = [alloc.new_image(n, SIZE, SIZE) for n in names]
        with pytest.raises(ConfigurationError):
            JacobiKernel(*bufs, alpha=0.0)


class TestConvolve:
    def test_constant_preserved(self, alloc):
        src = alloc.new_image("src", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        k = ConvolveKernel(src, out, radius=2)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = 4.0
        run_all(k, arrays)
        np.testing.assert_allclose(arrays["out"], 4.0, rtol=1e-6)

    def test_box_filter_interior(self, alloc, rng):
        src = alloc.new_image("src", SIZE, SIZE)
        out = alloc.new_image("out", SIZE, SIZE)
        r = 1
        k = ConvolveKernel(src, out, radius=r)
        arrays = {b.name: b.make_array() for b in alloc}
        arrays["src"][:] = rng.random((SIZE, SIZE), dtype=np.float32)
        run_all(k, arrays)
        s = arrays["src"].astype(np.float64)
        interior = sum(
            s[1 + dy : SIZE - 1 + dy, 1 + dx : SIZE - 1 + dx]
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
        ) / 9.0
        np.testing.assert_allclose(arrays["out"][1:-1, 1:-1], interior, atol=1e-5)
