"""Property-based tests for the streaming log-bucket histogram.

The histogram is the serve daemon's only latency record — raw samples
are discarded — so its algebra has to be trustworthy: merging is exact
for counts (and therefore for quantiles, which are a pure function of
the counts), insertion order never matters, and quantile estimates are
monotone in q and clamped to the observed range.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import (
    DEFAULT_LATENCY_BOUNDS_S,
    LogHistogram,
    merge_histograms,
)

# Latency-like values spanning the full ladder plus the overflow bucket.
values = st.floats(
    min_value=0.0, max_value=5e3, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, min_size=0, max_size=200)


def _fill(samples):
    hist = LogHistogram()
    for sample in samples:
        hist.observe(sample)
    return hist


class TestLayout:
    def test_default_bounds_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BOUNDS_S) == sorted(
            set(DEFAULT_LATENCY_BOUNDS_S)
        )
        assert DEFAULT_LATENCY_BOUNDS_S[0] == pytest.approx(1e-4)

    def test_invalid_layouts_rejected(self):
        for bad in ([], [0.0], [-1.0], [1.0, 1.0], [2.0, 1.0]):
            with pytest.raises(ValueError):
                LogHistogram(bad)

    def test_bucket_semantics_le(self):
        # Prometheus semantics: a sample equal to a bound lands in that
        # bound's bucket, one epsilon above lands in the next.
        hist = LogHistogram([1.0, 2.0])
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]
        hist.observe(1.0000001)
        assert hist.counts == [1, 1, 0]
        hist.observe(2.5)  # overflow
        assert hist.counts == [1, 1, 1]

    def test_rejects_negative_and_nan(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.observe(-1e-9)
        with pytest.raises(ValueError):
            hist.observe(float("nan"))


class TestMergeAlgebra:
    @given(a=value_lists, b=value_lists, c=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_merge_associative_and_order_free(self, a, b, c):
        left = _fill(a).merge(_fill(b)).merge(_fill(c))
        right = _fill(a).merge(_fill(b).merge(_fill(c)))
        joint = _fill(a + b + c)
        for other in (right, joint):
            assert left.counts == other.counts
            assert left.count == other.count
            assert left.min == other.min
            assert left.max == other.max
            assert math.isclose(
                left.sum, other.sum, rel_tol=1e-9, abs_tol=1e-12
            )
        if left.count:
            # Quantiles are a pure function of counts/min/max, so the
            # merged estimates are *exactly* equal, not just close.
            for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
                assert left.quantile(q) == joint.quantile(q)

    @given(samples=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_insert_order_invariance(self, samples):
        forward = _fill(samples)
        backward = _fill(list(reversed(samples)))
        assert forward.counts == backward.counts
        assert forward.count == backward.count
        assert forward.min == backward.min
        assert forward.max == backward.max

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram([1.0]).merge(LogHistogram([2.0]))

    def test_merge_histograms_empty_iterable(self):
        assert merge_histograms([]) is None


class TestQuantiles:
    @given(samples=value_lists.filter(lambda s: len(s) > 0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_monotone_and_clamped(self, samples):
        hist = _fill(samples)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        estimates = [hist.quantile(q) for q in qs]
        assert estimates == sorted(estimates)
        for estimate in estimates:
            assert hist.min <= estimate <= hist.max

    def test_empty_histogram_has_no_quantiles(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.quantile(0.5)
        assert hist.count == 0
        assert hist.min is None and hist.max is None
        assert "quantiles" not in hist.snapshot()

    def test_one_sample_every_quantile_is_the_sample(self):
        hist = _fill([0.0123])
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == pytest.approx(0.0123)

    def test_quantile_domain_checked(self):
        hist = _fill([1.0])
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_exact_on_identical_samples(self):
        hist = _fill([0.005] * 100)
        assert hist.quantile(0.5) == pytest.approx(0.005)
        assert hist.quantile(0.99) == pytest.approx(0.005)


class TestSerialization:
    @given(samples=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_as_dict_round_trip_lossless(self, samples):
        hist = _fill(samples)
        clone = LogHistogram.from_dict(hist.as_dict())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.min == hist.min
        assert clone.max == hist.max
        assert clone.bounds == hist.bounds

    def test_from_dict_rejects_malformed(self):
        good = _fill([0.001]).as_dict()
        for corrupt in (
            "not a dict",
            {**good, "counts": good["counts"][:-1]},
            {**good, "counts": [c - 1 for c in good["counts"]]},
            {**good, "count": 999},
            {**good, "min": None},
        ):
            with pytest.raises(ValueError):
                LogHistogram.from_dict(corrupt)

    def test_snapshot_trims_to_occupied_range(self):
        hist = _fill([0.0004, 0.01])
        buckets = hist.snapshot()["buckets"]
        assert buckets[0]["count"] > 0
        assert buckets[-1]["count"] > 0
        assert sum(b["count"] for b in buckets) == hist.count

    def test_bucket_pairs_cumulative_with_inf(self):
        hist = _fill([0.0001, 0.0002, 5e3])
        pairs = hist.bucket_pairs()
        assert pairs[-1] == ("+Inf", 3)
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
