"""The decision-ledger contract and the ``ktiler diff`` engine.

The ledger (:mod:`repro.obs.decisions`) records every Algorithm 1
merge candidate and every Algorithm 2 tile round, charged at the same
consume-time sites as the work counters — so it must be **bit-identical
across planner backends and worker counts**, sufficient to replay the
adopted merge script, persisted with plan artifacts, and the single
source the ``sched.merge`` trace instants derive from.  The diff
engine (:mod:`repro.obs.diff`) joins two ledgers to attribute plan
divergence to the first disagreeing decision.

Structure:

* ledger unit tests: schema roundtrip, digest stability, coverage of
  the whole data-edge set, validation errors;
* the differential suite (in the spirit of
  ``test_partition_differential.py``): probe graphs and a Figure-5
  family app produce one ledger digest across backends × workers;
* hypothesis sufficiency: replaying the adopted entries through a
  fresh partition reconstructs the plan's clustering;
* store migration: v2 envelopes and ledger-less v3 payloads both
  recompute with a ``RuntimeWarning``, never crash;
* diff engine + CLI: divergent and identical pairs, schema validation,
  HTML markers, ``--strict`` exit codes;
* serve: the ``ledger`` request flag and ``ktiler client diff``.
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import KTiler, KTilerConfig
from repro.core.fast_cluster import PLANNER_BACKEND_ENV_VAR, PLANNER_BACKENDS
from repro.gpusim import NOMINAL
from repro.gpusim.freq import FrequencyConfig
from repro.obs import Tracer
from repro.obs.decisions import (
    LEDGER_SCHEMA_VERSION,
    MERGE_OUTCOMES,
    MERGE_REASONS,
    DecisionLedger,
    replay_adopted,
    validate_ledger,
)
from repro.obs.diff import (
    DIFF_SCHEMA_VERSION,
    diff_ledgers,
    diff_plans,
    format_divergence,
    render_diff_html,
    validate_diff,
    write_diff,
)

HALF_MEM = FrequencyConfig(gpu_mhz=NOMINAL.gpu_mhz, mem_mhz=NOMINAL.mem_mhz / 2)


def _pipeline_app():
    from repro.apps import build_pipeline

    return build_pipeline(size=1024)


def _plan(app, planner_backend=None, workers=None, tracer=None, freq=NOMINAL):
    from repro.obs import NULL_TRACER

    ktiler = KTiler(
        app.graph,
        config=KTilerConfig(launch_overhead_us=2.0),
        tracer=tracer if tracer is not None else NULL_TRACER,
        planner_backend=planner_backend,
        workers=workers,
    )
    return ktiler.plan(freq)


@pytest.fixture(scope="module")
def pipeline_plan():
    """An adoption-rich plan (the pipeline adopts merges at 2us gap)."""
    return _plan(_pipeline_app())


# ----------------------------------------------------------------------
# Ledger unit tests
# ----------------------------------------------------------------------
class TestLedgerSchema:
    def test_roundtrip_preserves_digest(self, pipeline_plan):
        ledger = pipeline_plan.ledger
        doc = ledger.as_dict()
        assert doc["schema_version"] == LEDGER_SCHEMA_VERSION
        restored = DecisionLedger.from_dict(doc)
        assert restored.digest() == ledger.digest()
        assert restored.entries == ledger.entries

    def test_validate_accepts_wire_shape_with_extras(self, pipeline_plan):
        doc = pipeline_plan.ledger.as_dict()
        doc["digest"] = pipeline_plan.ledger.digest()
        doc["summary"] = pipeline_plan.ledger.summary()
        validate_ledger(doc)  # extra top-level keys are tolerated

    def test_summary_accounts_for_every_entry(self, pipeline_plan):
        ledger = pipeline_plan.ledger
        summary = ledger.summary()
        assert summary["entries"] == len(ledger.entries)
        assert summary["merges"] + summary["tile_rounds"] == summary["entries"]
        assert summary["merges"] == sum(
            summary[outcome] for outcome in MERGE_OUTCOMES
        )
        assert summary["adopted"] == pipeline_plan.stats.adopted_merges
        assert summary["adopted"] >= 1  # the case is adoption-rich

    def test_ledger_covers_every_data_edge(self, pipeline_plan):
        app = _pipeline_app()
        recorded = {
            (e["src"], e["dst"], e["buffer"])
            for e in pipeline_plan.ledger.merge_entries()
        }
        expected = {
            (edge.src, edge.dst, edge.buffer.name)
            for edge in app.graph.data_edges()
        }
        assert recorded == expected

    def test_entries_use_contract_vocabulary(self, pipeline_plan):
        for entry in pipeline_plan.ledger.merge_entries():
            assert entry["outcome"] in MERGE_OUTCOMES
            assert entry["reason"] in MERGE_REASONS

    @pytest.mark.parametrize(
        "mutate,match",
        [
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.update(entries="nope"), "entries"),
            (lambda d: d["entries"][0].update(seq=5), "seq"),
            (lambda d: d["entries"][0].update(kind="bogus"), "kind"),
            (lambda d: d["entries"][0].update(outcome="maybe"), "outcome"),
            (lambda d: d["entries"][0].pop("weight_us"), "weight_us"),
        ],
    )
    def test_validate_rejects_malformed(self, pipeline_plan, mutate, match):
        doc = json.loads(json.dumps(pipeline_plan.ledger.as_dict()))
        mutate(doc)
        with pytest.raises(ValueError, match=match):
            validate_ledger(doc)

    def test_tile_rounds_carry_frontier_provenance(self, pipeline_plan):
        rounds = pipeline_plan.ledger.tile_entries()
        assert rounds
        for event in rounds:
            assert event["blocks"] >= 1
            assert event["footprint_bytes"] >= 0
            assert 0.0 <= event["l2_occupancy"]
            assert isinstance(event["frontier_digest"], str)
            assert event["cluster"].startswith("c")


# ----------------------------------------------------------------------
# The differential contract: one digest across backends × workers
# ----------------------------------------------------------------------
LEDGER_CASES = [
    ("chain", 24),
    ("fan", 24),
    ("grid", 25),
]


def _probe_app(shape, kernels):
    from repro.apps.synthetic import build_probe_graph

    return build_probe_graph(shape=shape, kernels=kernels, size=32, seed=0)


class TestLedgerBitIdentity:
    @pytest.mark.parametrize("shape,kernels", LEDGER_CASES)
    def test_probe_graphs(self, shape, kernels, monkeypatch):
        monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
        digests = set()
        for backend in PLANNER_BACKENDS:
            for workers in (1, 2):
                plan = _plan(
                    _probe_app(shape, kernels), backend, workers=workers
                )
                validate_ledger(plan.ledger.as_dict())
                digests.add(plan.ledger.digest())
        assert len(digests) == 1

    def test_fig5_family_app(self, monkeypatch):
        """A reduced Figure-5 graph: same ledger under every engine."""
        from repro.apps import build_hsopticalflow

        monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
        digests = set()
        for backend in PLANNER_BACKENDS:
            for workers in (1, 2):
                app = build_hsopticalflow(
                    frame_size=64, levels=2, jacobi_iters=3
                )
                plan = _plan(app, backend, workers=workers)
                digests.add(plan.ledger.digest())
        assert len(digests) == 1

    def test_pipeline_adoption_rich(self, monkeypatch):
        monkeypatch.delenv(PLANNER_BACKEND_ENV_VAR, raising=False)
        digests = set()
        for backend in PLANNER_BACKENDS:
            for workers in (1, 2):
                plan = _plan(_pipeline_app(), backend, workers=workers)
                digests.add(plan.ledger.digest())
        assert len(digests) == 1


# ----------------------------------------------------------------------
# Satellite: spans derive from ledger entries (one source of truth)
# ----------------------------------------------------------------------
class TestSpansMatchLedger:
    def test_sched_merge_instants_mirror_merge_entries(self):
        tracer = Tracer()
        plan = _plan(_pipeline_app(), tracer=tracer)
        instants = [
            e["args"]
            for e in tracer.events
            if e.get("name") == "sched.merge"
        ]
        # Excluded/skipped entries never traced an instant before the
        # ledger existed, and still don't.
        entries = [
            e
            for e in plan.ledger.merge_entries()
            if e["outcome"] in ("adopted", "rejected", "invalid")
        ]
        assert len(instants) == len(entries)
        for args, entry in zip(instants, entries):
            assert args["decision"] == entry["outcome"]
            assert args["src"] == entry["src"]
            assert args["dst"] == entry["dst"]
            assert args["weight_us"] == entry["weight_us"]
            assert args["cluster_a"] == entry["cluster_a"]

    def test_decision_counter_families(self):
        tracer = Tracer()
        plan = _plan(_pipeline_app(), tracer=tracer)
        summary = plan.ledger.summary()
        m = tracer.metrics
        assert m.total("decisions.recorded") == summary["entries"]
        assert m.total("decisions.adopted") == summary["adopted"]
        assert m.total("decisions.tile_rounds") == summary["tile_rounds"]
        assert m.total("decisions.excluded") == summary["excluded"]

    def test_ledger_recorded_without_tracing(self):
        """The ledger is part of the plan, not of the telemetry."""
        plan = _plan(_pipeline_app())  # NULL_TRACER
        assert plan.ledger.entries
        validate_ledger(plan.ledger.as_dict())


# ----------------------------------------------------------------------
# Satellite: hypothesis sufficiency — the ledger replays the plan
# ----------------------------------------------------------------------
class TestReplaySufficiency:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shape=st.sampled_from(("chain", "fan", "grid")),
        kernels=st.integers(min_value=4, max_value=14),
        seed=st.integers(min_value=0, max_value=3),
        backend=st.sampled_from(PLANNER_BACKENDS),
        workers=st.sampled_from((1, 2)),
    )
    def test_replay_reconstructs_partition(
        self, shape, kernels, seed, backend, workers
    ):
        from repro.apps.synthetic import build_probe_graph

        app = build_probe_graph(
            shape=shape, kernels=kernels, size=16, seed=seed
        )
        plan = _plan(app, backend, workers=workers)
        replayed = replay_adopted(
            app.graph, plan.ledger, planner_backend=backend
        )
        want = sorted(
            sorted(plan.partition.members(cid))
            for cid in plan.partition.cluster_ids()
        )
        got = sorted(
            sorted(replayed.members(cid))
            for cid in replayed.cluster_ids()
        )
        assert got == want

    def test_replay_adoption_rich_case(self, pipeline_plan):
        app = _pipeline_app()
        assert pipeline_plan.stats.adopted_merges >= 1
        replayed = replay_adopted(app.graph, pipeline_plan.ledger)
        want = sorted(
            sorted(pipeline_plan.partition.members(cid))
            for cid in pipeline_plan.partition.cluster_ids()
        )
        got = sorted(
            sorted(replayed.members(cid)) for cid in replayed.cluster_ids()
        )
        assert got == want


# ----------------------------------------------------------------------
# Satellite: store migration — v2 envelopes and ledger-less payloads
# ----------------------------------------------------------------------
class TestStoreMigration:
    def _seed_store(self, tmp_path):
        from repro.store.store import ArtifactStore

        store = ArtifactStore(str(tmp_path))
        app = _pipeline_app()
        ktiler = KTiler(
            app.graph,
            config=KTilerConfig(launch_overhead_us=2.0),
            store=store,
        )
        plan = ktiler.plan(NOMINAL)
        paths = sorted((tmp_path / "plan").rglob("*.json"))
        assert len(paths) == 1
        return app, plan, paths[0]

    def _replan(self, tmp_path, app):
        from repro.store.store import ArtifactStore

        store = ArtifactStore(str(tmp_path))
        ktiler = KTiler(
            app.graph,
            config=KTilerConfig(launch_overhead_us=2.0),
            store=store,
        )
        return store, ktiler.plan(NOMINAL)

    def test_warm_plan_restores_the_ledger(self, tmp_path):
        app, cold, _path = self._seed_store(tmp_path)
        _store, warm = self._replan(tmp_path, app)
        assert warm.ledger.digest() == cold.ledger.digest()
        validate_ledger(warm.ledger.as_dict())

    def test_v2_envelope_recomputes_with_warning(self, tmp_path):
        """An in-place store upgraded from v2: malformed entry, corrupt
        counter, recompute — never a crash, never a ledger-less plan."""
        app, cold, path = self._seed_store(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["store_version"] = 2
        path.write_text(json.dumps(envelope))
        with pytest.warns(RuntimeWarning, match="malformed entry"):
            store, warm = self._replan(tmp_path, app)
        assert store.corrupt == 1
        assert warm.ledger.digest() == cold.ledger.digest()

    def test_v3_payload_without_ledger_recomputes(self, tmp_path):
        app, cold, path = self._seed_store(tmp_path)
        envelope = json.loads(path.read_text())
        del envelope["payload"]["ledger"]
        path.write_text(json.dumps(envelope))
        with pytest.warns(RuntimeWarning, match="stale plan entry"):
            _store, warm = self._replan(tmp_path, app)
        assert warm.ledger.digest() == cold.ledger.digest()

    def test_v3_payload_with_invalid_ledger_recomputes(self, tmp_path):
        app, cold, path = self._seed_store(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["ledger"] = {"schema_version": 99, "entries": []}
        path.write_text(json.dumps(envelope))
        with pytest.warns(RuntimeWarning, match="stale plan entry"):
            _store, warm = self._replan(tmp_path, app)
        assert warm.ledger.digest() == cold.ledger.digest()


# ----------------------------------------------------------------------
# The diff engine
# ----------------------------------------------------------------------
class TestDiffEngine:
    @pytest.fixture(scope="class")
    def divergent(self):
        app = _pipeline_app()
        ktiler = KTiler(app.graph, config=KTilerConfig(launch_overhead_us=2.0))
        plan_a = ktiler.plan(NOMINAL)
        plan_b = ktiler.plan(HALF_MEM)
        return app, plan_a, plan_b

    def test_cross_frequency_names_first_decision(self, divergent):
        app, plan_a, plan_b = divergent
        payload = diff_plans(
            app.graph, plan_a, plan_b, label_a="nominal", label_b="mem/2"
        )
        assert payload["schema_version"] == DIFF_SCHEMA_VERSION
        assert payload["kind"] == "plan_diff"
        assert not payload["identical"]
        divergence = payload["divergence"]
        assert divergence is not None
        assert "weight_us" in divergence["fields"]
        assert divergence["entry_a"]["reason"] in MERGE_REASONS
        text = format_divergence(payload)
        assert divergence["edge_a"] in text
        assert "weight" in text

    def test_identical_plans_diff_clean(self, divergent):
        app, plan_a, _ = divergent
        payload = diff_plans(app.graph, plan_a, plan_a)
        assert payload["identical"]
        assert payload["divergence"] is None
        assert payload["edge_weight_changes"] == []
        assert format_divergence(payload) == (
            "plans agree: no diverging decision"
        )

    def test_ledger_diff_over_wire_shape(self, divergent):
        _, plan_a, plan_b = divergent
        doc_a = {**plan_a.ledger.as_dict(), "digest": plan_a.ledger.digest()}
        doc_b = {**plan_b.ledger.as_dict(), "digest": plan_b.ledger.digest()}
        payload = diff_ledgers(doc_a, doc_b)
        assert payload["kind"] == "ledger_diff"
        assert not payload["identical"]
        assert payload["edge_weight_changes"]

    def test_html_and_json_artifacts(self, divergent, tmp_path):
        app, plan_a, plan_b = divergent
        payload = diff_plans(app.graph, plan_a, plan_b)
        import html as html_lib

        html = render_diff_html(payload)
        assert "<!DOCTYPE html>" in html
        assert "divergent" in html
        assert "First diverging decision" in html
        assert html_lib.escape(payload["divergence"]["edge_a"]) in html
        json_path = tmp_path / "diff.json"
        html_path = tmp_path / "diff.html"
        write_diff(
            payload, json_path=str(json_path), html_path=str(html_path)
        )
        validate_diff(json.loads(json_path.read_text()))
        assert html_path.read_text() == html

    def test_validate_rejects_identical_with_divergence(self, divergent):
        app, plan_a, plan_b = divergent
        payload = diff_plans(app.graph, plan_a, plan_b)
        broken = json.loads(json.dumps(payload))
        broken["identical"] = True
        with pytest.raises(ValueError, match="divergence"):
            validate_diff(broken)


# ----------------------------------------------------------------------
# CLI: ktiler diff
# ----------------------------------------------------------------------
class TestCliDiff:
    def test_strict_exits_2_on_divergence(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "diff.json"
        html_path = tmp_path / "diff.html"
        code = main(
            [
                "diff",
                "--preset",
                "demo",
                "--json",
                str(json_path),
                "--html",
                str(html_path),
                "--strict",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "first divergence at merge decision" in out
        doc = validate_diff(json.loads(json_path.read_text()))
        assert doc["divergence"] is not None
        assert "divergent" in html_path.read_text()

    def test_same_frequencies_exit_0(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "diff",
                "--preset",
                "demo",
                "--mem-mhz-b",
                str(NOMINAL.mem_mhz),
                "--json",
                str(tmp_path / "d.json"),
                "--html",
                str(tmp_path / "d.html"),
                "--strict",
            ]
        )
        assert code == 0
        assert "plans agree" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Serve: the ledger flag and client diff
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def daemon():
    from repro.serve.server import start_server
    from repro.serve.service import PlanService

    handle = start_server(PlanService())
    yield handle
    handle.close()


class TestServeLedger:
    def test_plan_with_ledger_flag(self, daemon):
        from repro.serve.client import ServeClient

        client = ServeClient(daemon.url)
        response = client.plan({"app": {"preset": "demo"}, "ledger": True})
        block = response["ledger"]
        validate_ledger(block)
        assert block["digest"]
        assert block["summary"]["entries"] == len(block["entries"])

    def test_plan_without_flag_omits_block(self, daemon):
        from repro.serve.client import ServeClient

        client = ServeClient(daemon.url)
        response = client.plan({"app": {"preset": "jacobi"}})
        assert "ledger" not in response

    def test_ledger_variants_memoize_apart(self, daemon):
        from repro.serve.client import ServeClient

        client = ServeClient(daemon.url)
        body = {"app": {"preset": "stencil"}}
        first = client.plan(body)
        assert "ledger" not in first
        with_ledger = client.plan({**body, "ledger": True})
        assert "ledger" in with_ledger
        assert with_ledger["served"] != "memo"
        again = client.plan({**body, "ledger": True})
        assert again["served"] == "memo"
        assert "ledger" in again

    def test_non_bool_flag_rejected(self, daemon):
        from repro.serve.client import ServeClient, ServeClientError

        client = ServeClient(daemon.url)
        with pytest.raises(ServeClientError, match="ledger"):
            client.plan({"app": {"preset": "demo"}, "ledger": "yes"})

    def test_client_diff_action(self, daemon, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "wire_diff.json"
        code = main(
            [
                "client",
                "diff",
                "--url",
                daemon.url,
                "--preset",
                "demo",
                "--strict",
                "--json",
                str(json_path),
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "first divergence at merge decision" in out
        doc = validate_diff(json.loads(json_path.read_text()))
        assert doc["kind"] == "ledger_diff"

    def test_client_diff_identical_exit_0(self, daemon, capsys):
        from repro.cli import main

        code = main(
            [
                "client",
                "diff",
                "--url",
                daemon.url,
                "--preset",
                "demo",
                "--mem-mhz-b",
                str(NOMINAL.mem_mhz),
                "--strict",
            ]
        )
        assert code == 0
        assert "plans agree" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Satellite: explain HTML links edges to their ledger entries
# ----------------------------------------------------------------------
class TestAuditLedgerLinks:
    @pytest.fixture(scope="class")
    def audit(self):
        from repro.obs.audit import audit_schedule

        app = _pipeline_app()
        ktiler = KTiler(app.graph, config=KTilerConfig(launch_overhead_us=2.0))
        return audit_schedule(ktiler, freq=NOMINAL)

    def test_edges_carry_decision_provenance(self, audit):
        assert audit.edges
        for edge in audit.edges:
            assert edge.decision_seq is not None
            assert edge.decision_outcome in MERGE_OUTCOMES
            assert edge.decision_reason in MERGE_REASONS

    def test_json_dict_carries_ledger_block(self, audit):
        from repro.obs.audit import validate_audit

        doc = audit.to_json_dict(preset="demo")
        validate_audit(doc)
        ledger = doc["ledger"]
        assert ledger["digest"]
        assert ledger["entries"]
        seqs = {e["seq"] for e in ledger["entries"]}
        for edge in doc["edges"]:
            assert edge["decision_seq"] in seqs

    def test_html_links_edges_to_ledger_anchors(self, audit):
        from repro.obs.audit import render_html

        html = render_html(audit.to_json_dict(preset="demo"))
        assert "Decision ledger" in html
        assert "#ledger-" in html
        for edge in audit.edges:
            assert f"id='ledger-{edge.decision_seq}'" in html
