"""Unit tests for performance tables and combination lookup."""

import pytest

from repro.core.perftable import (
    EMPTY_COMBO,
    PerformanceTable,
    PerfTableSet,
)
from repro.errors import ConfigurationError, TilingError


class TestPerformanceTable:
    def test_exact_points(self):
        table = PerformanceTable([(1, 1.0), (10, 10.0)])
        assert table.query(1) == 1.0
        assert table.query(10) == 10.0

    def test_linear_interpolation(self):
        table = PerformanceTable([(2, 2.0), (10, 18.0)])
        assert table.query(6) == pytest.approx(10.0)

    def test_below_smallest_scales_through_origin(self):
        table = PerformanceTable([(4, 8.0), (8, 16.0)])
        assert table.query(2) == pytest.approx(4.0)

    def test_above_largest_extrapolates(self):
        table = PerformanceTable([(2, 2.0), (4, 4.0)])
        assert table.query(8) == pytest.approx(8.0)

    def test_extrapolation_clamped_nonnegative(self):
        table = PerformanceTable([(2, 10.0), (4, 1.0)])
        assert table.query(100) == 0.0

    def test_single_point_scales(self):
        table = PerformanceTable([(4, 8.0)])
        assert table.query(2) == pytest.approx(4.0)
        assert table.query(8) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerformanceTable([])
        with pytest.raises(ConfigurationError):
            PerformanceTable([(0, 1.0)])
        with pytest.raises(ConfigurationError):
            PerformanceTable([(1, -1.0)])
        with pytest.raises(ConfigurationError):
            PerformanceTable([(1, 1.0), (1, 2.0)])
        table = PerformanceTable([(1, 1.0)])
        with pytest.raises(ConfigurationError):
            table.query(0)

    def test_points_sorted(self):
        table = PerformanceTable([(8, 8.0), (2, 2.0)])
        assert table.points == [(2, 2.0), (8, 8.0)]

    def test_monotone_inputs_give_monotone_interpolation(self):
        table = PerformanceTable([(1, 1.0), (4, 5.0), (16, 30.0)])
        values = [table.query(g) for g in range(1, 17)]
        assert values == sorted(values)


class TestPerfTableSet:
    class FakeKernel:
        name = "fake"

    def test_exact_combo(self):
        kernel = self.FakeKernel()
        tables = PerfTableSet()
        tables.add(kernel, EMPTY_COMBO, PerformanceTable([(1, 10.0)]))
        tables.add(kernel, frozenset({"a"}), PerformanceTable([(1, 5.0)]))
        assert tables.time(kernel, frozenset({"a"}), 1) == 5.0
        assert tables.time(kernel, EMPTY_COMBO, 1) == 10.0

    def test_subset_fallback_prefers_largest(self):
        kernel = self.FakeKernel()
        tables = PerfTableSet()
        tables.add(kernel, EMPTY_COMBO, PerformanceTable([(1, 10.0)]))
        tables.add(kernel, frozenset({"a"}), PerformanceTable([(1, 7.0)]))
        tables.add(kernel, frozenset({"a", "b"}), PerformanceTable([(1, 4.0)]))
        # {a, b, c} is unmeasured: falls back to {a, b}.
        assert tables.time(kernel, frozenset({"a", "b", "c"}), 1) == 4.0
        # {c} alone falls back to the empty combination.
        assert tables.time(kernel, frozenset({"c"}), 1) == 10.0

    def test_unknown_kernel(self):
        tables = PerfTableSet()
        with pytest.raises(TilingError):
            tables.time(self.FakeKernel(), EMPTY_COMBO, 1)

    def test_no_fallback_available(self):
        kernel = self.FakeKernel()
        tables = PerfTableSet()
        tables.add(kernel, frozenset({"a"}), PerformanceTable([(1, 1.0)]))
        with pytest.raises(TilingError):
            tables.time(kernel, frozenset({"b"}), 1)

    def test_combos_and_len(self):
        kernel = self.FakeKernel()
        tables = PerfTableSet()
        tables.add(kernel, EMPTY_COMBO, PerformanceTable([(1, 1.0)]))
        tables.add(kernel, frozenset({"x"}), PerformanceTable([(1, 1.0)]))
        assert len(tables) == 2
        assert tables.has_kernel(kernel)
        assert EMPTY_COMBO in tables.combos(kernel)
