"""Unit tests for the kernel abstraction (geometry, memoization, helpers)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.access import AccessKind
from repro.graph.buffers import BufferAllocator
from repro.kernels.base import row_accesses
from repro.kernels.pointwise import ScaleKernel

LINE_SHIFT = 7


@pytest.fixture
def kernel():
    alloc = BufferAllocator()
    src = alloc.new_image("src", 64, 64)
    out = alloc.new_image("out", 64, 64)
    return ScaleKernel(src, out, 2.0)


class TestGeometry:
    def test_grid_from_output(self, kernel):
        # 64x64 output with 32x8 blocks: 2 x 8 grid.
        assert kernel.grid == (2, 8)
        assert kernel.num_blocks == 16
        assert kernel.threads_per_block == 256

    def test_block_coords_roundtrip(self, kernel):
        for bid in kernel.all_block_ids():
            bx, by = kernel.block_coords(bid)
            assert kernel.block_id(bx, by) == bid

    def test_block_coords_bounds(self, kernel):
        with pytest.raises(ConfigurationError):
            kernel.block_coords(16)
        with pytest.raises(ConfigurationError):
            kernel.block_id(2, 0)

    def test_launch_signature(self, kernel):
        assert kernel.launch_signature == "scale<<<(2x8),(32x8)>>>"

    def test_figure1_grayscale_signature(self):
        # The paper's kernel A: 256x256 image, 32x8 blocks -> (8x32) grid.
        from repro.kernels.pointwise import GrayscaleKernel

        alloc = BufferAllocator()
        rgba = alloc.new_image("rgba", 256, 1024)
        gray = alloc.new_image("gray", 256, 256)
        assert GrayscaleKernel(rgba, gray).launch_signature == (
            "grayscale<<<(8x32),(32x8)>>>"
        )


class TestAccessCaching:
    def test_line_stream_memoized(self, kernel):
        first = kernel.block_line_stream(0, LINE_SHIFT)
        second = kernel.block_line_stream(0, LINE_SHIFT)
        assert first is second

    def test_line_sets_are_shared_frozensets(self, kernel):
        reads1, writes1 = kernel.block_line_sets(0, LINE_SHIFT)
        reads2, writes2 = kernel.block_line_sets(0, LINE_SHIFT)
        assert reads1 is reads2 and writes1 is writes2
        assert isinstance(reads1, frozenset)

    def test_touched_is_union(self, kernel):
        reads, writes = kernel.block_line_sets(3, LINE_SHIFT)
        assert kernel.block_touched_lines(3, LINE_SHIFT) == reads | writes

    def test_stream_consistent_with_sets(self, kernel):
        stream = kernel.block_line_stream(5, LINE_SHIFT)
        reads, writes = kernel.block_line_sets(5, LINE_SHIFT)
        stream_reads = {line for line, w in stream if not w}
        stream_writes = {line for line, w in stream if w}
        assert stream_reads == set(reads)
        assert stream_writes == set(writes)

    def test_blocks_partition_output_lines(self, kernel):
        """Union of all blocks' written lines covers the output exactly."""
        written = set()
        for bid in kernel.all_block_ids():
            _, writes = kernel.block_line_sets(bid, LINE_SHIFT)
            written |= writes
        assert written == set(kernel.out.lines(LINE_SHIFT))

    def test_block_instrs_positive(self, kernel):
        assert kernel.block_instrs(0, 0) > 0

    def test_footprint_lines(self, kernel):
        single = kernel.footprint_lines([0], LINE_SHIFT)
        double = kernel.footprint_lines([0, 1], LINE_SHIFT)
        assert len(single) < len(double)
        assert single <= double


class TestRowAccesses:
    def test_clamping(self):
        alloc = BufferAllocator()
        img = alloc.new_image("img", 8, 8)
        ranges = row_accesses(img, -2, 3, -1, 9, AccessKind.LOAD)
        assert len(ranges) == 3  # rows 0..2
        for rng in ranges:
            assert rng.count == 8  # cols clamped to [0, 8)

    def test_empty_region(self):
        alloc = BufferAllocator()
        img = alloc.new_image("img", 8, 8)
        assert row_accesses(img, 5, 5, 0, 8, AccessKind.LOAD) == []
        assert row_accesses(img, 0, 2, 8, 10, AccessKind.LOAD) == []


class TestValidation:
    def test_bad_grid_rejected(self):
        from repro.kernels.base import KernelSpec

        class Bad(KernelSpec):
            def block_accesses(self, bx, by):
                return []

        alloc = BufferAllocator()
        buf = alloc.new("b", 16)
        with pytest.raises(ConfigurationError):
            Bad("bad", (0, 1), (32, 8), (), (buf,))
        with pytest.raises(ConfigurationError):
            Bad("bad", (1, 1), (32, 8), (), (buf,), instrs_per_thread=0)

    def test_missing_functional_body_raises(self, kernel):
        from repro.kernels.base import KernelSpec

        class NoBody(KernelSpec):
            def block_accesses(self, bx, by):
                return []

        alloc = BufferAllocator()
        buf = alloc.new("b", 16)
        k = NoBody("nobody", (1, 1), (32, 1), (), (buf,))
        with pytest.raises(NotImplementedError):
            k.run_block({}, 0, 0)
