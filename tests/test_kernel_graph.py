"""Unit tests for the application graph (edge inference, validation)."""

import pytest

from repro.errors import GraphError
from repro.graph.buffers import BufferAllocator
from repro.graph.kernel_graph import EdgeKind, KernelGraph
from repro.kernels.pointwise import AddKernel, MemsetKernel, ScaleKernel

SIZE = 64


@pytest.fixture
def alloc():
    return BufferAllocator()


def images(alloc, *names):
    return [alloc.new_image(n, SIZE, SIZE) for n in names]


class TestEdgeInference:
    def test_raw_edge_from_last_writer(self, alloc):
        a, b, c = images(alloc, "a", "b", "c")
        g = KernelGraph()
        n0 = g.add(MemsetKernel(a, 1.0), name="init")
        n1 = g.add(ScaleKernel(a, b, 2.0), name="s1")
        n2 = g.add(ScaleKernel(b, c, 2.0), name="s2")
        data = g.data_edges()
        assert {(e.src, e.dst, e.buffer.name) for e in data} == {
            (n0, n1, "a"),
            (n1, n2, "b"),
        }

    def test_no_edge_for_unwritten_input(self, alloc):
        a, b = images(alloc, "a", "b")
        g = KernelGraph()
        g.add(ScaleKernel(a, b, 2.0))  # 'a' never written before
        assert g.data_edges() == []

    def test_war_edge(self, alloc):
        a, b = images(alloc, "a", "b")
        g = KernelGraph()
        n0 = g.add(MemsetKernel(a, 1.0))
        n1 = g.add(ScaleKernel(a, b, 2.0))  # reads a
        n2 = g.add(MemsetKernel(a, 0.0))  # rewrites a: WAR on n1
        antis = [e for e in g.edges if e.kind is EdgeKind.ANTI]
        assert (n1, n2) in {(e.src, e.dst) for e in antis}

    def test_waw_edge(self, alloc):
        (a,) = images(alloc, "a")
        g = KernelGraph()
        n0 = g.add(MemsetKernel(a, 1.0))
        n1 = g.add(MemsetKernel(a, 2.0))
        antis = [e for e in g.edges if e.kind is EdgeKind.ANTI]
        assert {(e.src, e.dst) for e in antis} == {(n0, n1)}

    def test_pingpong_chain_edges(self, alloc):
        a, b = images(alloc, "a", "b")
        g = KernelGraph()
        g.add(MemsetKernel(a, 1.0))
        for i in range(4):
            src, dst = (a, b) if i % 2 == 0 else (b, a)
            g.add(ScaleKernel(src, dst, 2.0), name=f"s{i}")
        # Each scale has one data input edge, and WAW/WAR constraints
        # serialize the reuse of the overwritten buffer.
        for node in list(g)[1:]:
            assert len(g.edges_in(node.node_id, data_only=True)) == 1
        assert any(e.kind is EdgeKind.ANTI for e in g.edges)

    def test_in_place_rejected(self, alloc):
        (a,) = images(alloc, "a")
        g = KernelGraph()
        with pytest.raises(GraphError):
            g.add(ScaleKernel(a, a, 2.0))


class TestAccessors:
    def test_node_lookup(self, diamond_app):
        g = diamond_app.graph
        assert g.node(0).name == "init"
        assert g.node_by_name("sum").kernel.name == "add"
        with pytest.raises(GraphError):
            g.node(99)
        with pytest.raises(GraphError):
            g.node_by_name("nope")

    def test_successors_predecessors(self, diamond_app):
        g = diamond_app.graph
        init = g.node_by_name("init").node_id
        total = g.node_by_name("sum").node_id
        succ = g.successors(init, data_only=True)
        assert len(succ) == 2
        assert set(g.predecessors(total, data_only=True)) == set(succ)

    def test_histogram(self, diamond_app):
        hist = diamond_app.graph.kernel_name_histogram()
        assert hist["scale"] == 2
        assert hist["add"] == 1

    def test_total_blocks(self, diamond_app):
        g = diamond_app.graph
        assert g.total_blocks() == sum(n.num_blocks for n in g)

    def test_summary_mentions_counts(self, diamond_app):
        assert "4 nodes" in diamond_app.graph.summary()


class TestReachability:
    def test_reaches(self, diamond_app):
        g = diamond_app.graph
        init = g.node_by_name("init").node_id
        total = g.node_by_name("sum").node_id
        left = g.node_by_name("left").node_id
        right = g.node_by_name("right").node_id
        assert g.reaches(init, total)
        assert g.reaches(left, total)
        assert not g.reaches(left, right)
        assert not g.reaches(total, init)

    def test_validate_passes_on_well_formed(self, diamond_app):
        diamond_app.graph.validate()

    def test_topological_order_is_insertion_order(self, diamond_app):
        g = diamond_app.graph
        order = g.topological_order()
        assert order == sorted(order)
        position = {n: i for i, n in enumerate(order)}
        for e in g.edges:
            assert position[e.src] < position[e.dst]
