"""Unit tests for the experiment harnesses (fast, reduced-scale configs).

The full-scale shape assertions live in benchmarks/; these tests cover
the harness mechanics — result containers, formatting, parameterization
— at sizes that keep the suite fast.
"""

import pytest

from repro.experiments import (
    cache_sweep,
    default_grid_sizes,
    gap_sweep,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_suitability,
    threshold_sweep,
)
from repro.experiments.presets import SCALED_SPEC
from repro.gpusim import GpuSpec
from repro.gpusim.freq import FIG3_CONFIGS, FIG5_CONFIGS


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(image_size=128)

    def test_block_ratio(self, result):
        assert result.tiled.num_blocks * 32 == result.default.num_blocks

    def test_tiled_hits_everything(self, result):
        assert result.tiled.cache_hit_rate == 1.0

    def test_deltas_positive(self, result):
        # 128x128 fields fit the 2 MB L2, so use a small cache instead.
        small = run_fig2(image_size=128, spec=GpuSpec(l2_bytes=128 * 1024))
        assert small.hit_rate_gap > 0.3
        assert small.issue_efficiency_ratio > 1.0

    def test_format_table(self, result):
        text = result.format_table()
        assert "default" in text and "tiled" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(
            image_size=128,
            spec=GpuSpec(l2_bytes=128 * 1024),
            grid_sizes=[1, 4, 16, 32, 64],
            with_split_comparison=False,
        )

    def test_all_series_present(self, result):
        assert set(result.throughput) == set(FIG3_CONFIGS)
        for series in result.throughput.values():
            assert len(series) == len(result.grid_sizes)
            assert all(v > 0 for v in series)

    def test_peak_lookup(self, result):
        grid, value = result.peak(FIG3_CONFIGS[0])
        assert grid in result.grid_sizes
        assert value == max(result.throughput[FIG3_CONFIGS[0]])

    def test_at_grid(self, result):
        config = FIG3_CONFIGS[1]
        assert result.at_grid(config, 16) == result.throughput[config][2]

    def test_rises_from_one_block(self, result):
        for config in FIG3_CONFIGS:
            series = result.throughput[config]
            assert max(series) > series[0]

    def test_default_grid_sizes_cover_range(self):
        sizes = default_grid_sizes(256)
        assert sizes[0] == 1 and sizes[-1] == 256
        assert sizes == sorted(set(sizes))

    def test_format_table(self, result):
        assert "peak" in result.format_table()


class TestFig4:
    def test_census_closed_form(self):
        result = run_fig4(frame_size=128, levels=2, jacobi_iters=3)
        assert result.matches_expected()
        assert result.num_nodes == len(result.app.graph)
        assert result.level_sizes == [128, 64]

    def test_format_table(self):
        result = run_fig4(frame_size=128, levels=2, jacobi_iters=3)
        text = result.format_table()
        assert "census matches closed form: True" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(
            frame_size=128,
            levels=2,
            jacobi_iters=6,
            spec=GpuSpec(l2_bytes=128 * 1024, launch_gap_us=0.5),
            configs=FIG5_CONFIGS[:2],
            check_functional=True,
        )

    def test_rows_per_config(self, result):
        assert [r.freq for r in result.report.rows] == list(FIG5_CONFIGS[:2])

    def test_gains_nonnegative(self, result):
        for row in result.report.rows:
            assert row.gain_with_ig >= 0.0
            assert row.gain_without_ig >= row.gain_with_ig - 1e-9

    def test_functional(self, result):
        assert result.functional_ok is True

    def test_plan_stats_recorded(self, result):
        assert set(result.plan_stats) == set(FIG5_CONFIGS[:2])

    def test_format_table(self, result):
        assert "average" in result.format_table()


class TestSuitability:
    @pytest.fixture(scope="class")
    def result(self):
        return run_suitability(n_1d=1 << 18, image_size=256)

    def test_all_kernels_scored(self, result):
        names = {row.kernel_name for row in result.rows}
        assert len(names) == len(result.rows) == 10

    def test_warp_flagged(self, result):
        assert result.row("warp").input_dependent

    def test_row_lookup_missing(self, result):
        with pytest.raises(KeyError):
            result.row("nope")

    def test_rows_have_valid_rates(self, result):
        for row in result.rows:
            assert 0.0 <= row.default_hit_rate <= 1.0
            assert 0.0 <= row.tiled_hit_rate <= 1.0
            assert 0.0 <= row.memory_stall_fraction <= 1.0


class TestAblations:
    def test_threshold_sweep_rows(self):
        result = threshold_sweep(thresholds=(0.0, 1e6))
        assert [row.parameter for row in result.rows] == [0.0, 1e6]
        assert result.rows[-1].adopted_merges == 0
        assert "threshold_us" in result.format_table()

    def test_gap_sweep_never_regresses(self):
        result = gap_sweep(gaps_us=(0.0, 50.0))
        assert result.rows[0].gain_with_ig >= result.rows[-1].gain_with_ig
        assert result.rows[-1].gain_with_ig >= -1e-9

    def test_cache_sweep_huge_cache_no_gain(self):
        result = cache_sweep(l2_sizes=(8 * 1024 * 1024,))
        assert result.rows[0].gain_with_ig == 0.0
