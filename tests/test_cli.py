"""Tests for the ``ktiler`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("fig2", "fig3", "fig4", "fig5", "suitability",
                        "ablation", "demo", "trace", "explain"):
            args = parser.parse_args(
                [command] + (["threshold"] if command == "ablation" else [])
            )
            assert args.command == command

    def test_ablation_knob_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nope"])

    def test_l2_override_flag(self):
        args = build_parser().parse_args(["fig5", "--l2-kb", "256"])
        assert args.l2_kb == 256

    def test_observability_flags_on_experiments(self):
        args = build_parser().parse_args(
            ["fig2", "--trace", "t.json", "--metrics", "m.prom"]
        )
        assert args.trace == "t.json"
        assert args.metrics == "m.prom"

    def test_trace_app_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--app", "nope"])

    def test_explain_preset_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--preset", "nope"])

    def test_bench_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "run", "--scale", "quick"])
        assert args.command == "bench" and args.bench_command == "run"
        args = parser.parse_args(["bench", "compare", "base.json", "cur.json"])
        assert args.bench_command == "compare"
        args = parser.parse_args(["bench", "report"])
        assert args.bench_command == "report"

    def test_bench_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_scale_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "run", "--scale", "galactic"])

    def test_bench_compare_knobs(self):
        args = build_parser().parse_args([
            "bench", "run", "--k-sigma", "4.5", "--rel-tol", "0.1", "--strict",
        ])
        assert args.k_sigma == 4.5 and args.rel_tol == 0.1 and args.strict

    def test_serve_registered_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8750
        assert args.timeout_s == 300.0 and args.max_body_kb == 1024
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--planner-backend", "fast",
             "--cache-dir", "/tmp/c", "--timeout-s", "5"]
        )
        assert args.port == 0 and args.planner_backend == "fast"
        assert args.cache_dir == "/tmp/c" and args.timeout_s == 5.0

    def test_client_registered_and_action_validated(self):
        args = build_parser().parse_args(
            ["client", "plan", "--preset", "fig5", "--measure",
             "--gpu-mhz", "549"]
        )
        assert args.command == "client" and args.action == "plan"
        assert args.preset == "fig5" and args.measure
        assert args.gpu_mhz == 549.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "teleport"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "plan", "--preset", "nope"])

    def test_client_gpu_base_validated(self):
        args = build_parser().parse_args(
            ["client", "plan", "--gpu-base", "embedded"]
        )
        assert args.gpu_base == "embedded"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "plan", "--gpu-base", "tpu"])

    def test_loadgen_registered_with_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen"
        assert args.url is None and args.preset == "demo"
        assert args.clients == 4 and args.requests == 25
        assert args.distinct == 1 and args.seed == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--preset", "nope"])


class TestClientRequestBody:
    """The client builds sparse bodies: server defaults stay server-side
    so its fingerprints match any other client's."""

    def _args(self, extra):
        return build_parser().parse_args(["client", "plan"] + extra)

    def test_minimal_body(self):
        from repro.cli import _client_request_body

        body = _client_request_body(self._args([]))
        assert body == {"app": {"preset": "demo"}}

    def test_full_body(self):
        from repro.cli import _client_request_body

        body = _client_request_body(self._args([
            "--preset", "fig5", "--size", "128", "--levels", "2",
            "--iters", "10", "--gpu-base", "paper", "--l2-kb", "512",
            "--gpu-mhz", "549", "--mem-mhz", "2505",
            "--sim-backend", "fast", "--planner-backend", "fast",
            "--workers", "2", "--measure", "--timeout-s", "30",
        ]))
        assert body == {
            "app": {"preset": "fig5", "size": 128, "levels": 2, "iters": 10},
            "gpu": {"base": "paper", "l2_kb": 512},
            "freq": {"gpu_mhz": 549.0, "mem_mhz": 2505.0},
            "sim_backend": "fast",
            "planner_backend": "fast",
            "workers": 2,
            "measure": True,
            "timeout_s": 30.0,
        }


class TestServeExecution:
    def test_loadgen_cli_writes_bench_document(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.obs.bench import validate_bench
        import json

        monkeypatch.chdir(tmp_path)
        code = main([
            "loadgen", "--preset", "demo", "--clients", "2",
            "--requests", "3", "--json", "out.json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "wrote out.json" in out
        with open(tmp_path / "out.json") as fh:
            doc = validate_bench(json.load(fh))
        assert doc["loadgen"]["requests"] == 6

    def test_client_against_live_daemon(self, capsys, tmp_path, monkeypatch):
        from repro.serve.server import start_server
        from repro.serve.service import PlanService

        monkeypatch.chdir(tmp_path)
        with start_server(PlanService()) as handle:
            code = main([
                "client", "plan", "--url", handle.url, "--preset", "demo",
                "--json", "plan.json",
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "plan demo:" in out and "plan_digest" in out
            assert (tmp_path / "plan.json").exists()
            assert main(["client", "health", "--url", handle.url]) == 0
            assert main(["client", "metrics", "--url", handle.url]) == 0
            metrics_out = capsys.readouterr().out
            assert "serve_requests" in metrics_out

    def test_client_unreachable_daemon_fails_cleanly(self, capsys):
        code = main([
            "client", "health", "--url", "http://127.0.0.1:1",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExecution:
    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--frame-size", "128", "--levels", "2",
                     "--iters", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "census matches closed form: True" in out

    def test_demo_runs_and_verifies(self, capsys):
        assert main(["demo", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "functionally equivalent: True" in out

    def test_fig5_small(self, capsys):
        code = main([
            "fig5", "--frame-size", "128", "--levels", "2", "--iters", "4",
            "--l2-kb", "128",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average" in out

    def test_trace_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        code = main([
            "trace", "--app", "pipeline", "--size", "128",
            "--trace", "out.json", "--metrics", "out.prom",
        ])
        assert code == 0
        trace = json.loads((tmp_path / "out.json").read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        prom = (tmp_path / "out.prom").read_text()
        assert len([l for l in prom.splitlines()
                    if l.startswith("# TYPE")]) >= 10
        err = capsys.readouterr().err
        assert "trace events" in err and "metric families" in err

    def test_trace_default_paths(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--app", "diamond", "--size", "64"]) == 0
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.prom").exists()

    def test_explain_demo_writes_audit(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.obs.audit import validate_audit

        monkeypatch.chdir(tmp_path)
        code = main([
            "explain", "--preset", "demo",
            "--json", "audit.json", "--html", "audit.html",
            "--metrics", "audit-metrics.json",
        ])
        assert code == 0

        payload = validate_audit(json.loads((tmp_path / "audit.json").read_text()))
        assert payload["preset"] == "demo"
        assert payload["edges"], "demo audit produced no edge rows"
        for row in payload["kernels"]:
            assert row["cold"] + row["capacity"] + row["conflict"] == row["misses"]

        html = (tmp_path / "audit.html").read_text()
        assert payload["edges"][0]["buffer"] in html

        captured = capsys.readouterr()
        assert "predicted" in captured.out and "actual" in captured.out
        assert "run summary:" in captured.err


class TestBenchExecution:
    """`ktiler bench` end to end at quick scale (sub-second workloads)."""

    RUN = [
        "bench", "run", "--scale", "quick", "--repeats", "2", "--warmup", "0",
        "--benchmarks", "replay.raw",
    ]

    def test_run_writes_validated_json_html_history(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        from repro.obs.bench import load_history, validate_bench

        monkeypatch.chdir(tmp_path)
        code = main(self.RUN + ["--history", "hist.jsonl"])
        assert code == 0
        doc = validate_bench(json.loads((tmp_path / "bench.json").read_text()))
        assert doc["benchmarks"][0]["name"] == "replay.raw"
        assert "ktiler bench dashboard" in (tmp_path / "bench.html").read_text()
        assert len(load_history(str(tmp_path / "hist.jsonl"))) == 1
        assert "replay.raw" in capsys.readouterr().err

    def test_clean_rerun_compares_at_zero(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.RUN + ["--json", "base.json"]) == 0
        code = main(self.RUN + ["--json", "cur.json", "--compare", "base.json"])
        assert code == 0, capsys.readouterr().err
        assert main(["bench", "compare", "base.json", "cur.json"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero_and_names_the_phase(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(self.RUN + ["--json", "base.json"]) == 0
        doc = json.loads((tmp_path / "base.json").read_text())
        bench = doc["benchmarks"][0]
        wall = bench["wall_s"]
        wall["samples"] = [s + 0.25 for s in wall["samples"]]
        for key in ("median", "mean", "min", "max"):
            wall[key] += 0.25
        wall["ci95"] = [wall["ci95"][0] + 0.25, wall["ci95"][1] + 0.25]
        bench["phases"]["replay"]["median"] += 0.25
        (tmp_path / "regressed.json").write_text(json.dumps(doc))

        code = main(["bench", "compare", "base.json", "regressed.json"])
        assert code == 2
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "replay" in captured.err  # the slowed phase is named

        # The regression report JSON round-trips.
        assert main([
            "bench", "compare", "base.json", "regressed.json",
            "--json", "cmp.json",
        ]) == 2
        report = json.loads((tmp_path / "cmp.json").read_text())
        assert report["ok"] is False
        assert report["deltas"][0]["phase"] == "replay"

    def test_fingerprint_mismatch_is_advisory_unless_strict(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        from repro.obs.bench import fingerprint_noise_key

        monkeypatch.chdir(tmp_path)
        assert main(self.RUN + ["--json", "base.json"]) == 0
        doc = json.loads((tmp_path / "base.json").read_text())
        env = doc["environment"]
        env["workers"] = env["workers"] + 9
        env["noise_key"] = fingerprint_noise_key(env)
        bench = doc["benchmarks"][0]
        wall = bench["wall_s"]
        wall["samples"] = [s + 0.25 for s in wall["samples"]]
        for key in ("median", "mean", "min", "max"):
            wall[key] += 0.25
        wall["ci95"] = [wall["ci95"][0] + 0.25, wall["ci95"][1] + 0.25]
        (tmp_path / "foreign.json").write_text(json.dumps(doc))

        assert main(["bench", "compare", "base.json", "foreign.json"]) == 0
        assert "advisory" in capsys.readouterr().err
        assert main([
            "bench", "compare", "base.json", "foreign.json", "--strict",
        ]) == 2

    def test_update_baseline_writes_a_loadable_doc(
        self, tmp_path, monkeypatch
    ):
        import json

        from repro.obs.bench import validate_bench

        monkeypatch.chdir(tmp_path)
        code = main(self.RUN + ["--update-baseline", "baseline.json"])
        assert code == 0
        validate_bench(json.loads((tmp_path / "baseline.json").read_text()))

    def test_report_renders_history(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.RUN + ["--history", "hist.jsonl"]) == 0
        assert main(self.RUN + ["--history", "hist.jsonl"]) == 0
        assert main([
            "bench", "report", "--history", "hist.jsonl", "--html", "dash.html",
        ]) == 0
        dash = (tmp_path / "dash.html").read_text()
        assert "<svg" in dash  # two runs -> a real sparkline

    def test_report_on_empty_history_fails_cleanly(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "report", "--history", "absent.jsonl"]) == 1
