"""Tests for the ``ktiler`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("fig2", "fig3", "fig4", "fig5", "suitability",
                        "ablation", "demo", "trace", "explain"):
            args = parser.parse_args(
                [command] + (["threshold"] if command == "ablation" else [])
            )
            assert args.command == command

    def test_ablation_knob_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nope"])

    def test_l2_override_flag(self):
        args = build_parser().parse_args(["fig5", "--l2-kb", "256"])
        assert args.l2_kb == 256

    def test_observability_flags_on_experiments(self):
        args = build_parser().parse_args(
            ["fig2", "--trace", "t.json", "--metrics", "m.prom"]
        )
        assert args.trace == "t.json"
        assert args.metrics == "m.prom"

    def test_trace_app_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--app", "nope"])

    def test_explain_preset_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--preset", "nope"])


class TestExecution:
    def test_fig4_runs(self, capsys):
        assert main(["fig4", "--frame-size", "128", "--levels", "2",
                     "--iters", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "census matches closed form: True" in out

    def test_demo_runs_and_verifies(self, capsys):
        assert main(["demo", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "functionally equivalent: True" in out

    def test_fig5_small(self, capsys):
        code = main([
            "fig5", "--frame-size", "128", "--levels", "2", "--iters", "4",
            "--l2-kb", "128",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average" in out

    def test_trace_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        code = main([
            "trace", "--app", "pipeline", "--size", "128",
            "--trace", "out.json", "--metrics", "out.prom",
        ])
        assert code == 0
        trace = json.loads((tmp_path / "out.json").read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        prom = (tmp_path / "out.prom").read_text()
        assert len([l for l in prom.splitlines()
                    if l.startswith("# TYPE")]) >= 10
        err = capsys.readouterr().err
        assert "trace events" in err and "metric families" in err

    def test_trace_default_paths(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--app", "diamond", "--size", "64"]) == 0
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.prom").exists()

    def test_explain_demo_writes_audit(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.obs.audit import validate_audit

        monkeypatch.chdir(tmp_path)
        code = main([
            "explain", "--preset", "demo",
            "--json", "audit.json", "--html", "audit.html",
            "--metrics", "audit-metrics.json",
        ])
        assert code == 0

        payload = validate_audit(json.loads((tmp_path / "audit.json").read_text()))
        assert payload["preset"] == "demo"
        assert payload["edges"], "demo audit produced no edge rows"
        for row in payload["kernels"]:
            assert row["cold"] + row["capacity"] + row["conflict"] == row["misses"]

        html = (tmp_path / "audit.html").read_text()
        assert payload["edges"][0]["buffer"] in html

        captured = capsys.readouterr()
        assert "predicted" in captured.out and "actual" in captured.out
        assert "run summary:" in captured.err
