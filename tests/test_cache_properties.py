"""Property-based tests for the cache simulator (hypothesis).

The reference model is a per-set ordered list with explicit LRU
bookkeeping — an independent (slower, obviously correct) implementation
the optimized simulator must agree with on arbitrary access streams.
"""

from collections import OrderedDict
from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.cache import SetAssocCache


class ReferenceLru:
    """Oracle: per-set OrderedDict with move-to-end on hit.

    Takes the set-index function as a parameter so the same oracle
    verifies both the plain modulo mapping and the hashed mapping.
    """

    def __init__(self, num_sets: int, assoc: int, index=None):
        self.num_sets = num_sets
        self.assoc = assoc
        self.index = index if index is not None else (lambda line: line % num_sets)
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, line: int) -> bool:
        cset = self.sets[self.index(line)]
        if line in cset:
            cset.move_to_end(line)
            return True
        cset[line] = True
        if len(cset) > self.assoc:
            cset.popitem(last=False)
        return False


geometries = st.tuples(st.integers(1, 8), st.integers(1, 8))
streams = st.lists(
    st.tuples(st.integers(0, 63), st.booleans()), min_size=0, max_size=300
)


@given(geometry=geometries, stream=streams)
@settings(max_examples=200, deadline=None)
def test_matches_reference_lru(geometry, stream):
    num_sets, assoc = geometry
    cache = SetAssocCache(num_sets, assoc, hash_sets=False)
    oracle = ReferenceLru(num_sets, assoc)
    for line, is_write in stream:
        assert cache.access(line, is_write) == oracle.access(line)


@given(geometry=geometries, stream=streams)
@settings(max_examples=200, deadline=None)
def test_hashed_mode_matches_reference_lru(geometry, stream):
    num_sets, assoc = geometry
    cache = SetAssocCache(num_sets, assoc, hash_sets=True)
    oracle = ReferenceLru(num_sets, assoc, index=cache.set_index)
    for line, is_write in stream:
        assert cache.access(line, is_write) == oracle.access(line)


@given(geometry=geometries, lines=st.lists(st.integers(0, 10**9), max_size=64))
@settings(max_examples=100, deadline=None)
def test_hashed_index_in_range(geometry, lines):
    num_sets, assoc = geometry
    cache = SetAssocCache(num_sets, assoc, hash_sets=True)
    for line in lines:
        assert 0 <= cache.set_index(line) < num_sets


@given(geometry=geometries, stream=streams)
@settings(max_examples=100, deadline=None)
def test_capacity_invariant(geometry, stream):
    num_sets, assoc = geometry
    cache = SetAssocCache(num_sets, assoc)
    for line, is_write in stream:
        cache.access(line, is_write)
        assert len(cache) <= cache.capacity_lines
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))  # no duplicates


@given(geometry=geometries, stream=streams)
@settings(max_examples=100, deadline=None)
def test_hit_implies_previously_accessed(geometry, stream):
    num_sets, assoc = geometry
    cache = SetAssocCache(num_sets, assoc)
    seen = set()
    for line, is_write in stream:
        hit = cache.access(line, is_write)
        if hit:
            assert line in seen
        seen.add(line)


@given(geometry=geometries, stream=streams)
@settings(max_examples=100, deadline=None)
def test_stats_account_every_access(geometry, stream):
    num_sets, assoc = geometry
    cache = SetAssocCache(num_sets, assoc)
    for line, is_write in stream:
        cache.access(line, is_write)
    assert cache.stats.accesses == len(stream)
    assert cache.stats.writes == sum(1 for _, w in stream if w)


@given(geometry=geometries, stream=streams)
@settings(max_examples=100, deadline=None)
def test_stream_replay_equals_scalar_replay(geometry, stream):
    num_sets, assoc = geometry
    bulk = SetAssocCache(num_sets, assoc)
    scalar = SetAssocCache(num_sets, assoc)
    hits, misses = bulk.access_stream(stream)
    scalar_hits = sum(scalar.access(line, w) for line, w in stream)
    assert hits == scalar_hits
    assert hits + misses == len(stream)
    assert sorted(bulk.resident_lines()) == sorted(scalar.resident_lines())


@given(
    geometry=geometries,
    warm=st.lists(st.integers(0, 63), max_size=50),
    probe=st.integers(0, 63),
)
@settings(max_examples=100, deadline=None)
def test_touch_many_equivalent_to_silent_accesses(geometry, warm, probe):
    num_sets, assoc = geometry
    warmed = SetAssocCache(num_sets, assoc)
    warmed.touch_many(warm)
    accessed = SetAssocCache(num_sets, assoc)
    for line in warm:
        accessed.access(line)
    assert warmed.contains(probe) == accessed.contains(probe)
    assert warmed.stats.accesses == 0
