"""Tests for the auto-profiler and edge-weight computation."""

import pytest

from repro.core.perftable import EMPTY_COMBO
from repro.core.profiler import (
    KernelProfiler,
    LazyPerfTables,
    grid_ladder,
)
from repro.core.weights import (
    compute_edge_weights,
    node_is_tileable,
    select_candidates,
)
from repro.errors import ConfigurationError
from repro.gpusim import NOMINAL, FrequencyConfig, GpuSpec
from repro.graph.buffers import BufferAllocator
from repro.kernels.pointwise import ScaleKernel


class TestGridLadder:
    def test_includes_full_grid(self):
        assert grid_ladder(256)[-1] == 256

    def test_distinct_and_sorted(self):
        ladder = grid_ladder(1000)
        assert ladder == sorted(set(ladder))

    def test_tiny_grid(self):
        assert grid_ladder(1) == [1]

    def test_fraction_resolution(self):
        ladder = grid_ladder(64, fractions=(0.25, 0.5, 1.0))
        assert ladder == [16, 32, 64]


@pytest.fixture(scope="module")
def scale_setup():
    alloc = BufferAllocator()
    src = alloc.new_image("src", 512, 512)  # 1 MB: half the 2 MB L2
    out = alloc.new_image("out", 512, 512)
    kernel = ScaleKernel(src, out, 2.0)
    profiler = KernelProfiler()
    return kernel, profiler


class TestKernelProfiler:
    def test_profile_measures_all_default_combos(self, scale_setup):
        kernel, profiler = scale_setup
        profile = profiler.profile(kernel)
        combos = profile.combos()
        assert EMPTY_COMBO in combos
        assert frozenset({"src"}) in combos
        ladder = grid_ladder(kernel.num_blocks)
        assert profile.grid_sizes(EMPTY_COMBO) == ladder

    def test_profile_is_memoized(self, scale_setup):
        kernel, profiler = scale_setup
        assert profiler.profile(kernel) is profiler.profile(kernel)

    def test_warm_combo_is_faster(self, scale_setup):
        kernel, profiler = scale_setup
        profile = profiler.profile(kernel)
        grid = kernel.num_blocks
        spec = profiler.spec
        dram = profiler.sim.dram
        cold = profile.table_at(EMPTY_COMBO, spec, dram, NOMINAL)
        warm = profile.table_at(frozenset({"src"}), spec, dram, NOMINAL)
        # At a grid where the input fits the L2 the warm run wins.
        small = grid_ladder(grid)[2]
        assert warm.query(small) < cold.query(small)

    def test_tables_monotone_in_grid(self, scale_setup):
        kernel, profiler = scale_setup
        profile = profiler.profile(kernel)
        table = profile.table_at(
            EMPTY_COMBO, profiler.spec, profiler.sim.dram, NOMINAL
        )
        points = table.points
        times = [t for _, t in points]
        assert times == sorted(times)

    def test_saved_time_positive_for_memory_bound_kernel(self, scale_setup):
        kernel, profiler = scale_setup
        saved = profiler.saved_time(kernel, "src", NOMINAL)
        assert saved > 0.0

    def test_saved_time_scales_with_memory_slowdown(self, scale_setup):
        kernel, profiler = scale_setup
        fast = profiler.saved_time(kernel, "src", FrequencyConfig(1324, 5010))
        slow = profiler.saved_time(kernel, "src", FrequencyConfig(1324, 800))
        assert slow > fast

    def test_saved_time_unknown_buffer(self, scale_setup):
        kernel, profiler = scale_setup
        with pytest.raises(ConfigurationError):
            profiler.saved_time(kernel, "nope", NOMINAL)

    def test_lazy_tables_match_profiled(self, scale_setup):
        kernel, profiler = scale_setup
        lazy = LazyPerfTables(profiler, NOMINAL)
        grid = kernel.num_blocks
        direct = profiler.profile(kernel).table_at(
            EMPTY_COMBO, profiler.spec, profiler.sim.dram, NOMINAL
        )
        assert lazy.time(kernel, EMPTY_COMBO, grid) == pytest.approx(
            direct.query(grid)
        )

    def test_lazy_tables_profile_new_combo_on_demand(self, scale_setup):
        kernel, profiler = scale_setup
        lazy = LazyPerfTables(profiler, NOMINAL)
        value = lazy.time(kernel, frozenset({"src"}), 8)
        assert value > 0.0


class TestEdgeWeights:
    def test_pipeline_weights(self, pipeline_app):
        profiler = KernelProfiler()
        weights = compute_edge_weights(pipeline_app.graph, profiler, NOMINAL)
        graph = pipeline_app.graph
        by_buffer = {
            e.buffer.name: weights.weight(e) for e in graph.data_edges()
        }
        # Consumers of device-produced data are cache-sensitive...
        assert by_buffer["gray"] > 0.0
        assert by_buffer["rgba"] > 0.0
        # ...but the DtH copy node is non-tileable: weight forced to 0.
        assert by_buffer["half"] == 0.0

    def test_non_tileable_flags(self, pipeline_app):
        graph = pipeline_app.graph
        assert not node_is_tileable(graph.node_by_name("HtD.rgba"))
        assert node_is_tileable(graph.node_by_name("A.grayscale"))

    def test_warp_is_input_dependent_hence_untileable(self):
        from repro.apps import build_hsopticalflow

        app = build_hsopticalflow(frame_size=64, levels=2, jacobi_iters=2)
        wp = app.graph.node_by_name("WP.l1")
        assert not node_is_tileable(wp)

    def test_select_candidates_sorted_and_thresholded(self, pipeline_app):
        profiler = KernelProfiler()
        weights = compute_edge_weights(pipeline_app.graph, profiler, NOMINAL)
        candidates = select_candidates(pipeline_app.graph, weights, 0.0)
        values = [weights.weight(e) for e in candidates]
        assert values == sorted(values, reverse=True)
        assert all(v > 0.0 for v in values)
        high = select_candidates(pipeline_app.graph, weights, max(values) + 1)
        assert high == []

    def test_select_candidates_negative_threshold_rejected(self, pipeline_app):
        profiler = KernelProfiler()
        weights = compute_edge_weights(pipeline_app.graph, profiler, NOMINAL)
        with pytest.raises(ConfigurationError):
            select_candidates(pipeline_app.graph, weights, -1.0)

    def test_nonzero_count(self, pipeline_app):
        profiler = KernelProfiler()
        weights = compute_edge_weights(pipeline_app.graph, profiler, NOMINAL)
        assert weights.nonzero_count() >= 2
