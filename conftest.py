"""Repository-root pytest configuration.

Adds ``--sim-backend`` so the whole suite can be exercised against
either L2 replay engine (see :mod:`repro.gpusim.fast_cache`).  The
chosen backend is exported through ``KTILER_SIM_BACKEND`` before any
test runs, which is the same environment hook the CLI honours, so no
individual test needs to thread the selection explicitly.

CI runs the tier-1 suite once per backend; both legs must pass with
identical results because the fast engine is bit-exact by contract.
"""

from __future__ import annotations

import os

from repro.gpusim.fast_cache import BACKEND_ENV_VAR, BACKENDS


def pytest_addoption(parser):
    parser.addoption(
        "--sim-backend",
        choices=BACKENDS,
        default=None,
        help="L2 replay engine for every simulator built during the run "
        f"(sets {BACKEND_ENV_VAR}; default: leave the environment as-is)",
    )


def pytest_configure(config):
    backend = config.getoption("--sim-backend")
    if backend is not None:
        os.environ[BACKEND_ENV_VAR] = backend


def pytest_report_header(config):
    backend = os.environ.get(BACKEND_ENV_VAR)
    if backend:
        return f"sim backend: {backend} ({BACKEND_ENV_VAR})"
    return "sim backend: per-call defaults (reference core, fast experiments)"
