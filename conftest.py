"""Repository-root pytest configuration.

Adds ``--sim-backend`` so the whole suite can be exercised against
either L2 replay engine (see :mod:`repro.gpusim.fast_cache`),
``--planner-backend`` so it can be exercised against either merge
planner (see :mod:`repro.core.fast_cluster`), and ``--workers`` so it
can be exercised with the parallel pipeline stages fanned out over
processes (see :mod:`repro.parallel`).  All selections are exported
through the same environment hooks the CLI honours
(``KTILER_SIM_BACKEND`` / ``KTILER_PLANNER_BACKEND`` /
``KTILER_WORKERS``) before any test runs, so no individual test needs
to thread them explicitly.

CI runs the tier-1 suite once per backend (sim and planner) plus a
``--workers=2`` leg; every leg must pass with identical results because
the fast engines are bit-exact by contract and the parallel stages are
bit-identical to the serial oracle by construction.
"""

from __future__ import annotations

import os

from repro.core.fast_cluster import PLANNER_BACKEND_ENV_VAR, PLANNER_BACKENDS
from repro.gpusim.fast_cache import BACKEND_ENV_VAR, BACKENDS
from repro.parallel import WORKERS_ENV_VAR


def pytest_addoption(parser):
    parser.addoption(
        "--sim-backend",
        choices=BACKENDS,
        default=None,
        help="L2 replay engine for every simulator built during the run "
        f"(sets {BACKEND_ENV_VAR}; default: leave the environment as-is)",
    )
    parser.addoption(
        "--planner-backend",
        choices=PLANNER_BACKENDS,
        default=None,
        help="merge planner for every KTiler built during the run "
        f"(sets {PLANNER_BACKEND_ENV_VAR}; default: leave the "
        "environment as-is)",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel pipeline stages "
        f"(sets {WORKERS_ENV_VAR}; default: leave the environment as-is)",
    )


def pytest_configure(config):
    backend = config.getoption("--sim-backend")
    if backend is not None:
        os.environ[BACKEND_ENV_VAR] = backend
    planner = config.getoption("--planner-backend")
    if planner is not None:
        os.environ[PLANNER_BACKEND_ENV_VAR] = planner
    workers = config.getoption("--workers")
    if workers is not None:
        os.environ[WORKERS_ENV_VAR] = str(workers)


def pytest_report_header(config):
    parts = []
    backend = os.environ.get(BACKEND_ENV_VAR)
    if backend:
        parts.append(f"sim backend: {backend} ({BACKEND_ENV_VAR})")
    else:
        parts.append(
            "sim backend: per-call defaults (reference core, fast experiments)"
        )
    planner = os.environ.get(PLANNER_BACKEND_ENV_VAR)
    if planner:
        parts.append(
            f"planner backend: {planner} ({PLANNER_BACKEND_ENV_VAR})"
        )
    else:
        parts.append(
            "planner backend: per-call defaults "
            "(reference core, fast experiments)"
        )
    workers = os.environ.get(WORKERS_ENV_VAR)
    if workers:
        parts.append(f"workers: {workers} ({WORKERS_ENV_VAR})")
    return parts
