#!/usr/bin/env python3
"""Quickstart: KTILER on the paper's motivational example (Figure 1).

Builds the two-kernel pipeline — an RGBA image converted to grayscale
by kernel A, then downscaled 2x by kernel B — walks through every stage
of the KTILER pipeline, and shows the cache effect tiling exploits:

1. trace the application once (the block analyzer);
2. inspect the block dependency graph (Figure 1(b));
3. run the two-phase scheduler;
4. compare the default and tiled schedules on the simulated GPU;
5. verify the tiled schedule computes the identical output.

Run:  python examples/quickstart.py
"""

from repro import KTiler, KTilerConfig, build_pipeline
from repro.gpusim import NOMINAL
from repro.runtime import compare_default_vs_ktiler, schedules_equivalent

# A 1024x1024 input: the 4 MB intermediate exceeds the GTX 960M's 2 MB
# L2, so the default execution mode thrashes between A and B.
SIZE = 1024
LAUNCH_GAP_US = 2.0


def main() -> None:
    app = build_pipeline(size=SIZE)
    print("Application:", app.graph.summary())
    for node in app.graph:
        print(f"  {node.name:<14} {node.kernel.launch_signature}")

    # --- block analyzer -------------------------------------------------
    ktiler = KTiler(
        app.graph, config=KTilerConfig(launch_overhead_us=LAUNCH_GAP_US)
    )
    block_graph = ktiler.block_graph
    print("\nBlock analyzer:", block_graph.summary())

    b_node = app.graph.node_by_name("B.downscale")
    first = (b_node.node_id, 0)
    producers = block_graph.producers(first)
    print(f"Figure 1(b): downscale block (0,0) depends on "
          f"{len(producers)} grayscale blocks: "
          f"{sorted(bid for _, bid in producers)}")

    # --- scheduler ------------------------------------------------------
    plan = ktiler.plan(NOMINAL)
    print("\nKTILER schedule:", plan.schedule.summary())
    print(f"  merges adopted: {plan.stats.adopted_merges}, "
          f"estimated cost {plan.estimated_cost_us:.0f}us")
    print("  first launches:",
          ", ".join(s.label or str(s.node_id) for s in list(plan.schedule)[:6]),
          "...")

    from repro.graph import schedule_gantt

    print("\nInterleaving (one lane per kernel, launch order left to right):")
    print(schedule_gantt(plan.schedule, app.graph))

    # --- measurement ----------------------------------------------------
    report = compare_default_vs_ktiler(
        ktiler, [NOMINAL], launch_gap_us=LAUNCH_GAP_US
    )
    print("\nSimulated execution:")
    print(report.format_table())
    row = report.rows[0]
    print(f"  L2 hit rate: {row.default_hit_rate * 100:.1f}% -> "
          f"{row.ktiler_hit_rate * 100:.1f}%")

    # --- functional check -------------------------------------------
    ok, mismatched = schedules_equivalent(
        app.graph, plan.schedule, app.host_inputs()
    )
    print(f"\nTiled output identical to default output: {ok}")
    if not ok:
        raise SystemExit(f"mismatch in buffers: {mismatched}")


if __name__ == "__main__":
    main()
