#!/usr/bin/env python3
"""The §II kernel study: which kernels respond to tiling, and why.

Scores a zoo of classic GPU kernels — reduction, Hillis–Steele scan,
bitonic sort, tall-skinny matmul, transpose, Black–Scholes, grayscale,
Jacobi, convolution, warping — against the paper's three tiling
conditions:

1. a large gap between the cache hit rates at the default and the
   minimum grid sizes (room for improvement);
2. performance limited by memory accesses;
3. block dependencies computable offline (input-independent accesses).

Run:  python examples/kernel_study.py
"""

from repro.experiments import run_suitability
from repro.experiments.suitability import HIT_GAP_CUTOFF, MEM_STALL_CUTOFF


def main() -> None:
    result = run_suitability()
    print(result.format_table())
    print(
        f"\nConditions: hit-rate gap >= {HIT_GAP_CUTOFF * 100:.0f} pts "
        f"(condition 1), memory stalls >= {MEM_STALL_CUTOFF * 100:.0f}% "
        f"(condition 2), input-independent accesses (condition 3)."
    )
    print(
        "\nReading the table:\n"
        "  - reduce/scan/bitonic/blackscholes stream every element once:\n"
        "    the hit rate is whatever the producer left in the L2, so\n"
        "    tiling has maximal headroom (the paper's §II list).\n"
        "  - matmul responds on 'special dimensions' (tall-skinny, so\n"
        "    streamed panels dominate and fit per-subkernel).\n"
        "  - convolve is the counter-example: each block re-reads its\n"
        "    halo many times, the default hit rate is already high, and\n"
        "    the gap is small.\n"
        "  - warp fails condition 3: where it reads depends on the flow\n"
        "    values, so its block dependencies cannot be fixed offline."
    )


if __name__ == "__main__":
    main()
