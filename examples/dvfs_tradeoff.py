#!/usr/bin/env python3
"""DVFS trade-off study (Figure 3 and the §II energy observation).

Sweeps the Jacobi kernel's grid size under the paper's four
(GPU, MEM) MHz operating points and prints the throughput curves:
rising with utilization, peaking where the working set saturates the
L2, collapsing once it spills to DRAM.

Then reproduces the paper's energy-relevant observation: splitting a
1000-block workload into four 250-block sub-kernels lets the *lowest*
operating point out-run a single launch at a much higher memory
frequency — cache-aware tiling as a DVFS enabler.

Run:  python examples/dvfs_tradeoff.py
"""

from repro.experiments import run_fig3
from repro.gpusim.freq import FIG3_CONFIGS


def main() -> None:
    grids = [1, 2, 4, 8, 16, 32, 64, 128, 192, 256, 320, 384, 512, 768, 1024]
    result = run_fig3(image_size=512, grid_sizes=grids)
    print(result.format_table())

    series1, _, series3, series4 = FIG3_CONFIGS
    peak3_grid, peak3 = result.peak(series3)
    _, peak4 = result.peak(series4)
    tail3 = result.at_grid(series3, 1024)
    tail4 = result.at_grid(series4, 1024)
    print(
        f"\nObservations (cf. paper §II):\n"
        f"  - at the peak (grid {peak3_grid}) series-3 {series3.label} reaches "
        f"{peak3:.1f} blocks/us vs series-4 {series4.label} {peak4:.1f}: the\n"
        f"    L2 serves the requests, so the 3x memory-frequency gap "
        f"disappears;\n"
        f"  - at the full grid series-3 falls to {tail3:.1f} vs {tail4:.1f} "
        f"({tail3 / tail4:.0%}): the hit rate is gone and DRAM bandwidth "
        f"rules;\n"
    )
    split = result.split_comparison
    if split:
        print(
            f"  - splitting 1000 blocks into 4x250 at series-1 "
            f"{series1.label} gives {split['split_low_freq']:.1f} blocks/us vs "
            f"{split['one_launch_high_freq']:.1f} for one launch at series-3 "
            f"{series3.label}:\n    more throughput at a fraction of the "
            f"GPU/memory frequencies (lower power)."
        )


if __name__ == "__main__":
    main()
