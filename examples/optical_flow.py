#!/usr/bin/env python3
"""The paper's evaluation: KTILER on HSOpticalFlow (Figures 4 and 5).

Builds the pyramidal Horn–Schunck optical-flow application, computes an
actual flow field between two synthetic frames (verifying that the
tiled schedule produces the identical flow), and reproduces the
Figure 5 comparison across the paper's four DVFS operating points.

Run:  python examples/optical_flow.py            (scaled, ~1 min)
      python examples/optical_flow.py --paper    (paper scale, hours)
"""

import argparse

import numpy as np

from repro import KTiler, KTilerConfig, build_hsopticalflow
from repro.experiments.presets import (
    PAPER_SPEC,
    SCALED_FRAME_SIZE,
    SCALED_JACOBI_ITERS,
    SCALED_LEVELS,
    SCALED_SPEC,
)
from repro.gpusim.freq import FIG5_CONFIGS
from repro.runtime import (
    compare_default_vs_ktiler,
    make_arrays,
    run_default_functional,
    run_functional,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="paper-scale parameters (very slow)")
    parser.add_argument("--iters", type=int, default=None,
                        help="Jacobi iterations per pyramid step")
    args = parser.parse_args()

    if args.paper:
        frame_size, levels, iters, spec = 1024, 3, 500, PAPER_SPEC
    else:
        frame_size, levels = SCALED_FRAME_SIZE, SCALED_LEVELS
        iters, spec = SCALED_JACOBI_ITERS, SCALED_SPEC
    if args.iters is not None:
        iters = args.iters

    app = build_hsopticalflow(frame_size=frame_size, levels=levels,
                              jacobi_iters=iters)
    print("Figure 4 graph:", app.graph.summary())
    print(f"  JI nodes: {app.jacobi_node_fraction * 100:.1f}% of the graph")

    # --- compute the flow (block-wise, default schedule) ------------
    payload = app.host_inputs()
    arrays = run_default_functional(app.graph, payload)
    u, v = arrays[app.flow_u.name], arrays[app.flow_v.name]
    print(f"\nEstimated flow between the synthetic frames "
          f"(true shift: +2px x, +1px y):")
    print(f"  median u = {np.median(u):+.2f}  median v = {np.median(v):+.2f}")

    # --- KTILER and the Figure 5 comparison --------------------------
    ktiler = KTiler(
        app.graph, spec=spec,
        config=KTilerConfig(launch_overhead_us=spec.launch_gap_us),
    )
    print("\nFigure 5: default vs KTILER vs KTILER w/o IG")
    report = compare_default_vs_ktiler(ktiler, FIG5_CONFIGS)
    print(report.format_table())
    print(f"  (paper: ~25% mean gain with IG, ~36% without)")

    # --- the tiled schedule computes the identical flow -------------
    plan = ktiler.plan(FIG5_CONFIGS[0])
    tiled = run_functional(plan.schedule, app.graph,
                           make_arrays(app.graph, payload))
    same = np.array_equal(tiled[app.flow_u.name], u) and np.array_equal(
        tiled[app.flow_v.name], v
    )
    print(f"\nTiled schedule ({plan.schedule.num_launches} launches) "
          f"computes the identical flow: {same}")
    if not same:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
